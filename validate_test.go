package metascritic

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}

	mutate := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := []struct {
		name string
		cfg  Config
	}{
		{"NaN epsilon", mutate(func(c *Config) { c.Epsilon = math.NaN() })},
		{"negative epsilon", mutate(func(c *Config) { c.Epsilon = -0.1 })},
		{"epsilon above one", mutate(func(c *Config) { c.Epsilon = 1.5 })},
		{"zero batch", mutate(func(c *Config) { c.BatchSize = 0 })},
		{"negative batch", mutate(func(c *Config) { c.BatchSize = -5 })},
		{"negative budget", mutate(func(c *Config) { c.MaxMeasurements = -1 })},
		{"negative prior weight", mutate(func(c *Config) { c.PriorWeight = -2 })},
		{"NaN prior weight", mutate(func(c *Config) { c.PriorWeight = math.NaN() })},
		{"negative bootstrap", mutate(func(c *Config) { c.BootstrapPerStrategy = -1 })},
		{"zero rank config", mutate(func(c *Config) { c.Rank.MaxRank = 0 })},
		{"zero rank iterations", mutate(func(c *Config) { c.Rank.Iterations = 0 })},
		{"NaN rank lambda", mutate(func(c *Config) { c.Rank.Lambda = math.NaN() })},
		{"prior out of range", mutate(func(c *Config) {
			var pr [144]float64
			pr[3] = 1.5
			c.Priors = &pr
		})},
	}
	for _, tc := range bad {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", tc.name, err)
		}
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	w := smallWorld(1)
	p := NewPipeline(w)
	ctx := context.Background()

	cfg := DefaultConfig()
	cfg.BatchSize = 0
	if _, err := p.Run(ctx, 0, cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("invalid config: got %v, want ErrInvalidConfig", err)
	}
	if _, err := p.Run(ctx, -1, DefaultConfig()); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("negative metro: got %v, want ErrInvalidConfig", err)
	}
	if _, err := p.Run(ctx, len(w.G.Metros), DefaultConfig()); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("out-of-range metro: got %v, want ErrInvalidConfig", err)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.Run(cancelled, 0, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: got %v, want context.Canceled", err)
	}
}

func TestRunRejectsNaNEpsilon(t *testing.T) {
	w := smallWorld(1)
	p := NewPipeline(w)
	cfg := DefaultConfig()
	cfg.Epsilon = math.NaN()
	if _, err := p.Run(context.Background(), 0, cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("NaN epsilon: got %v, want ErrInvalidConfig", err)
	}
}

func TestSnapshotIsolatesStore(t *testing.T) {
	w := smallWorld(6)
	p := NewPipeline(w)
	snap := p.Snapshot()
	if snap.World != p.World || snap.Engine != p.Engine {
		t.Fatalf("snapshot must share world and engine")
	}
	if snap.Store == p.Store {
		t.Fatalf("snapshot must own its store")
	}
	// Measurements fed to the snapshot must not appear in the base store.
	rng := rand.New(rand.NewSource(1))
	if added := snap.SeedPublicMeasurements(4, rng); added == 0 {
		t.Fatalf("no measurements seeded into the snapshot")
	}
	policy := DefaultConfig().NegPolicy
	found := false
	for m, metro := range w.G.Metros {
		if snap.Store.Estimate(m, metro.Members, policy).Mask.Count() > 0 {
			found = true
		}
		if n := p.Store.Estimate(m, metro.Members, policy).Mask.Count(); n != 0 {
			t.Fatalf("snapshot measurements leaked into the base store: metro %d has %d entries", m, n)
		}
	}
	if !found {
		t.Fatalf("snapshot measurements produced no estimate entries")
	}
}
