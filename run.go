package metascritic

// Run is the package's single run entry point (the pre-v1
// RunMetro/RunMetroContext wrappers are gone); every error Run returns
// wraps one of the sentinel errors of errors.go. Rescore in stream.go is
// the incremental counterpart for evolved worlds.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"metascritic/internal/als"
	"metascritic/internal/asgraph"
	"metascritic/internal/obs"
	"metascritic/internal/probe"
	"metascritic/internal/rank"
)

// abortErr wraps a context abort so it matches both ErrCanceled and the
// context's own cause (context.Canceled / context.DeadlineExceeded).
func abortErr(metro int, phase string, cause error) error {
	return fmt.Errorf("metascritic: metro %d: %s aborted: %w: %w", metro, phase, ErrCanceled, cause)
}

// Run executes the full metAScritic loop (Fig. 2) on one metro. The config
// is validated up front; ctx cancellation is checked between measurements
// and between estimation rounds, so an abort takes effect promptly and
// returns an error wrapping ErrCanceled (and the context's cause). A
// cancelled run that got past validation returns its partial *Result
// alongside the error: the phases that did run keep their wall-clock and
// allocation telemetry, so batch statistics can attribute the cost of
// aborted work instead of dropping it.
//
// Determinism: a run is a pure function of (world, store contents at
// entry, metro, cfg) — traceroute simulation is hash-based and the only
// RNG is seeded from cfg.Seed — so equal inputs give byte-identical
// Results regardless of what other goroutines do to *other* pipelines.
// cfg.MeasureWorkers is explicitly outside that function: batches of
// traceroutes are simulated speculatively in parallel but committed in
// batch order (measure.go), so every field of Result except the Timings
// telemetry is byte-identical across worker counts.
func (p *Pipeline) Run(ctx context.Context, metro int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("metascritic: metro %d: %w", metro, err)
	}
	g := p.World.G
	if metro < 0 || metro >= len(g.Metros) {
		return nil, fmt.Errorf("metascritic: %w: metro index %d out of range [0,%d)", ErrInvalidConfig, metro, len(g.Metros))
	}
	if err := ctx.Err(); err != nil {
		return nil, abortErr(metro, "run", err)
	}
	// Dense-metro pruning: Internet-scale head metros colocate thousands
	// of ASes, and everything below is O(members²). Metros at or under
	// the cap pass through untouched (the slice is returned as-is), so
	// legacy-scale results stay byte-identical.
	members := probe.TopMembers(g, g.Metros[metro].Members, cfg.MaxMetroMembers)
	rng := rand.New(rand.NewSource(cfg.Seed))

	sel := probe.NewSelector(g, metro, members, p.VPs(), p.Hitlist)
	boot := cfg.BootstrapPerStrategy
	if cfg.Priors != nil {
		sel.InitPriors(*cfg.Priors, cfg.PriorWeight)
		boot = (boot + 4) / 5 // transferred priors need far fewer samples
	}

	res := &Result{Metro: metro, Members: members}

	// Phase-attribution counters: heap allocations are sampled at the
	// same boundaries as the wall-clock phases (5 ReadMemStats calls per
	// run — negligible next to a phase). See PhaseTimings.Allocs for the
	// process-global caveat.
	var memStats runtime.MemStats
	mallocs := func() uint64 {
		runtime.ReadMemStats(&memStats)
		return memStats.Mallocs
	}
	allocMark := mallocs()
	allocPhase := func(counter *uint64) {
		now := mallocs()
		*counter += now - allocMark
		allocMark = now
	}

	// Working estimate; delta-refreshed in place as measurements land
	// (obs.Store.Refresh re-derives only the pairs the new traces
	// touched, byte-identical to a full rebuild).
	estStart := time.Now()
	est := p.Store.Estimate(metro, members, cfg.NegPolicy)
	res.Timings.Estimate += time.Since(estStart)
	refresh := func() {
		t0 := time.Now()
		p.Store.Refresh(est)
		res.Timings.Estimate += time.Since(t0)
	}
	features := BuildFeatures(g, members)
	budget := cfg.MaxMeasurements
	workers := measureWorkers(cfg)
	mstats := &res.Timings.Measure
	mstats.Workers = workers

	// Bootstrap phase (§3.3.2): calibrate per-strategy success rates with
	// a few random measurements per strategy before targeted selection.
	phaseStart := time.Now()
	if boot > 0 && budget <= 0 && cfg.StrictBudget {
		return nil, fmt.Errorf("metascritic: metro %d: %w: budget %d cannot cover the %d-per-strategy bootstrap calibration",
			metro, ErrBudgetExhausted, cfg.MaxMeasurements, boot)
	}
	if boot > 0 && budget > 0 {
		plan := sel.BootstrapPlan(boot, 600, rng)
		p.runPlan(ctx, workers, plan, &budget, mstats, func(m probe.Measurement, findings []obs.Finding) {
			res.Measurements++
			res.BootstrapMeasurements++
			informative := false
			want := asgraph.MakePair(m.LinkI, m.LinkJ)
			for _, f := range findings {
				if f.Pair == want {
					informative = true
					break
				}
			}
			sel.Report(m, informative)
			// Recorded as exploration-like: Fig. 4 calibration excludes
			// bootstrap probes since they are not P-selected.
			res.Calibrations = append(res.Calibrations, Calibration{
				P: m.P, Informative: informative, Exploration: true,
				VP: m.VP, Target: m.Target, LinkI: m.LinkI, LinkJ: m.LinkJ, Strat: m.Strat,
			})
		})
		refresh()
		if cfg.StrictBudget && budget <= 0 && res.BootstrapMeasurements < len(plan) && ctx.Err() == nil {
			return nil, fmt.Errorf("metascritic: metro %d: %w: bootstrap calibration truncated at %d of %d planned measurements",
				metro, ErrBudgetExhausted, res.BootstrapMeasurements, len(plan))
		}
	}
	res.Timings.Bootstrap = time.Since(phaseStart)
	allocPhase(&res.Timings.Allocs.Bootstrap)
	if err := ctx.Err(); err != nil {
		return res, abortErr(metro, "bootstrap", err)
	}

	// target/cur are the topUp closure's round-loop buffers, hoisted so
	// the dozens of topUp rounds across the whole rank loop share two
	// allocations (profile-guided; see DESIGN.md §7).
	target := make([]int, len(members))
	cur := make([]int, len(members))
	var fillBuf []int
	topUp := func(need []int) int {
		before := est.Mask.Count()
		// Translate "additional entries" into absolute per-row targets so
		// any measurement that fills a needy row counts, regardless of
		// which entry we were aiming at. Targets are overshot by the
		// holdout size: the rank loop removes HoldoutPerRow entries per
		// row when scoring, so rows topped to exactly r would drop back
		// below it.
		for i := range need {
			target[i] = 0
			if need[i] > 0 {
				target[i] = est.Mask.RowCount(i) + need[i] + cfg.Rank.HoldoutPerRow
			}
		}
		stale := 0
		for round := 0; round < 16 && budget > 0 && ctx.Err() == nil; round++ {
			for i := range cur {
				cur[i] = 0
			}
			remaining := 0
			for i := range target {
				if d := target[i] - est.Mask.RowCount(i); d > 0 {
					cur[i] = d
					remaining += d
				}
			}
			if remaining == 0 {
				break
			}
			size := cfg.BatchSize
			if size > budget {
				size = budget
			}
			countBefore := est.Mask.Count()
			fillBuf = est.AppendRowFill(fillBuf)
			batch := sel.SelectBatch(size, cfg.Epsilon, fillBuf, cur, est.Mask.Has, rng)
			if len(batch) == 0 {
				break
			}
			p.runPlan(ctx, workers, batch, &budget, mstats, func(m probe.Measurement, findings []obs.Finding) {
				res.Measurements++
				informative, foundLink, foundNon := false, false, false
				want := asgraph.MakePair(m.LinkI, m.LinkJ)
				for _, f := range findings {
					if f.Pair == want {
						informative = true
						if f.Direct {
							foundLink = true
						} else {
							foundNon = true
						}
					}
				}
				sel.Report(m, informative)
				res.Calibrations = append(res.Calibrations, Calibration{
					P: m.P, Informative: informative,
					FoundLink: foundLink, FoundNon: foundNon,
					Exploration: m.Exploration,
					VP:          m.VP, Target: m.Target,
					LinkI: m.LinkI, LinkJ: m.LinkJ, Strat: m.Strat,
				})
			})
			refresh()
			if est.Mask.Count() == countBefore {
				// A whole batch without a single new entry: give the
				// elusive rows one more chance, then stop (the paper's
				// "limit of successive traceroutes that fail").
				stale++
				if stale >= 2 {
					break
				}
			} else {
				stale = 0
			}
		}
		return (est.Mask.Count() - before) / 2
	}

	// Rank estimation with integrated targeted measurement (§3.2 + §3.3).
	phaseStart = time.Now()
	rcfg := cfg.Rank
	rcfg.Seed = cfg.Seed
	rcfg.Stop = func() bool { return ctx.Err() != nil }
	rres := rank.Estimate(est.E, est.Mask, features, topUp, rcfg)
	res.Rank = rres.Rank
	res.RankHistory = rres.History
	res.Estimate = est
	res.StrategyRates = sel.StrategyRates()
	res.Timings.RankLoop = time.Since(phaseStart)
	allocPhase(&res.Timings.Allocs.RankLoop)
	if err := ctx.Err(); err != nil {
		return res, abortErr(metro, "rank estimation", err)
	}

	// Final completion at the estimated rank. The featureless/featured
	// problem pair is built once and shared across the tune grid, the
	// final ratings and the λ-search holdout below (holdouts are overlay
	// deltas, so the problems stay valid throughout).
	phaseStart = time.Now()
	opts := als.Options{
		Rank:          rres.Rank,
		Lambda:        rcfg.Lambda,
		FeatureWeight: rcfg.FeatureWeight,
		Iterations:    rcfg.Iterations + 5,
		Seed:          cfg.Seed,
	}
	probNoF := als.NewProblem(est.E, est.Mask, nil)
	var probF *als.Problem
	if features != nil && features.Cols > 0 {
		probF = als.NewProblem(est.E, est.Mask, features)
	}
	if cfg.Tune {
		t := als.TuneWith(probNoF, probF, est.E, est.Mask, rres.Rank, rng)
		opts.Lambda = t.Lambda
		opts.FeatureWeight = t.FeatureWeight
	}
	res.Lambda = opts.Lambda
	res.FeatureWeight = opts.FeatureWeight
	prob := probNoF
	if opts.FeatureWeight > 0 && probF != nil {
		prob = probF
	}
	res.Ratings, res.Factors = prob.CompleteFactors(opts, nil, nil)
	res.Timings.Completion = time.Since(phaseStart)
	allocPhase(&res.Timings.Allocs.Completion)
	if err := ctx.Err(); err != nil {
		return res, abortErr(metro, "completion", err)
	}

	// λ search: hold out 20% of observed entries, score the completion on
	// them, pick the F-maximizing threshold (§3.1).
	phaseStart = time.Now()
	res.Threshold = p.pickThreshold(est, prob, opts, rng)
	res.Timings.Threshold = time.Since(phaseStart)
	allocPhase(&res.Timings.Allocs.Threshold)
	return res, nil
}
