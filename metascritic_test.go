package metascritic

import (
	"math/rand"
	"testing"

	"metascritic/internal/netsim"
	"metascritic/internal/obs"
	"metascritic/internal/stats"
)

func smallWorld(seed int64) *netsim.World {
	return netsim.Generate(netsim.Config{Seed: seed, Metros: netsim.DefaultMetros(0.12)})
}

func TestBuildFeatures(t *testing.T) {
	w := smallWorld(1)
	members := w.G.Metros[0].Members
	f := BuildFeatures(w.G, members)
	if f.Rows != len(members) {
		t.Fatalf("feature rows %d != members %d", f.Rows, len(members))
	}
	// Each one-hot block sums to one per row.
	for r := 0; r < f.Rows; r++ {
		sum := 0.0
		for c := 0; c < 7; c++ { // class block
			sum += f.At(r, c)
		}
		if sum != 1 {
			t.Fatalf("class one-hot sums to %v", sum)
		}
	}
}

func TestSeedPublicMeasurements(t *testing.T) {
	w := smallWorld(2)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	n := p.SeedPublicMeasurements(3, rng)
	if n == 0 {
		t.Fatalf("no public measurements issued")
	}
	if p.Engine.Issued() != n {
		t.Fatalf("engine issued %d, reported %d", p.Engine.Issued(), n)
	}
}

func TestRunMetroEndToEnd(t *testing.T) {
	w := smallWorld(3)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(8, rng)

	metro := w.G.MetroOfName("Tokyo").Index
	cfg := DefaultConfig()
	cfg.BatchSize = 120
	cfg.MaxMeasurements = 6000
	cfg.Rank.MaxRank = 16
	cfg.Rank.Iterations = 8
	cfg.Tune = true
	res := mustRun(t, p, metro, cfg)

	if res.Rank < 1 {
		t.Fatalf("rank %d", res.Rank)
	}
	if res.Measurements == 0 {
		t.Fatalf("no targeted measurements issued")
	}
	if res.Measurements > cfg.MaxMeasurements {
		t.Fatalf("budget exceeded: %d > %d", res.Measurements, cfg.MaxMeasurements)
	}
	if !res.Ratings.IsSymmetric(1e-9) {
		t.Fatalf("ratings not symmetric")
	}
	if len(res.Calibrations) != res.Measurements {
		t.Fatalf("calibration records %d != measurements %d", len(res.Calibrations), res.Measurements)
	}

	// Score the completed ratings against ground truth (cross-validation
	// quality gate: AUC should be clearly better than chance).
	truth := w.Truths[metro]
	var scores []float64
	var labels []bool
	for i := 0; i < len(res.Members); i++ {
		for j := i + 1; j < len(res.Members); j++ {
			scores = append(scores, res.Ratings.At(i, j))
			labels = append(labels, truth.M.At(i, j) > 0.5)
		}
	}
	auc := stats.AUC(scores, labels)
	if auc < 0.8 {
		t.Fatalf("end-to-end AUC = %.3f, want >= 0.8", auc)
	}

	// The measured estimate must agree with ground truth on strong
	// positive entries (direct same-metro observations are links).
	errs, checks := 0, 0
	for i := 0; i < len(res.Members); i++ {
		for j := i + 1; j < len(res.Members); j++ {
			v, ok := res.Estimate.Value(res.Members[i], res.Members[j])
			if !ok || v < 0.99 {
				continue
			}
			checks++
			if truth.M.At(i, j) < 0.5 {
				errs++
			}
		}
	}
	if checks == 0 {
		t.Fatalf("no strong positive measurements")
	}
	if frac := float64(errs) / float64(checks); frac > 0.1 {
		t.Fatalf("measured same-metro links wrong at rate %.2f", frac)
	}
}

func TestRunMetroRespectsNegPolicy(t *testing.T) {
	w := smallWorld(4)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(6, rng)
	metro := w.G.MetroOfName("Tokyo").Index
	cfg := DefaultConfig()
	cfg.BatchSize = 60
	cfg.MaxMeasurements = 600
	cfg.Rank.MaxRank = 6
	cfg.Rank.Iterations = 4
	cfg.NegPolicy = obs.NegNone
	res := mustRun(t, p, metro, cfg)
	for i := 0; i < len(res.Members); i++ {
		for j := i + 1; j < len(res.Members); j++ {
			if v, ok := res.Estimate.Value(res.Members[i], res.Members[j]); ok && v < 0 {
				t.Fatalf("NegNone produced a negative entry %v", v)
			}
		}
	}
}

func TestResultAccessors(t *testing.T) {
	w := smallWorld(5)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(5, rng)
	metro := w.G.MetroOfName("Osaka").Index
	cfg := DefaultConfig()
	cfg.BatchSize = 50
	cfg.MaxMeasurements = 300
	cfg.Rank.MaxRank = 5
	cfg.Rank.Iterations = 4
	res := mustRun(t, p, metro, cfg)

	links := res.LinksAbove(0.5)
	for _, pr := range links {
		if res.Rating(pr.A, pr.B) < 0.5 {
			t.Fatalf("LinksAbove returned a low-rated pair")
		}
	}
	// Rating for a non-member is zero.
	nonMember := -1
	for i := 0; i < w.G.N(); i++ {
		if _, ok := res.Estimate.Index[i]; !ok {
			nonMember = i
			break
		}
	}
	if nonMember >= 0 && res.Rating(nonMember, res.Members[0]) != 0 {
		t.Fatalf("non-member rating should be 0")
	}
}
