package metascritic_test

import (
	"context"
	"fmt"
	"math/rand"

	"metascritic"
)

// Example shows the minimal end-to-end flow: generate a world, seed public
// measurements, run metAScritic on a metro and read out the inferences.
func Example() {
	world := metascritic.GenerateWorld(metascritic.WorldConfig{
		Seed:   1,
		Metros: metascritic.DefaultMetros(0.06),
	})
	pipe := metascritic.NewPipeline(world)
	pipe.SeedPublicMeasurements(5, rand.New(rand.NewSource(1)))

	metro := world.G.MetroOfName("Tokyo")
	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = 400
	cfg.Rank.MaxRank = 6
	cfg.Rank.Iterations = 4
	res, err := pipe.Run(context.Background(), metro.Index, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println(res.Rank >= 1)
	fmt.Println(len(res.LinksAbove(0.9)) <= len(res.LinksAbove(0.3)))
	// Output:
	// true
	// true
}

// ExampleProgressiveTopology demonstrates the §5.1 threshold-sweep
// framework: links ordered by confidence, consumed at any operating point.
func ExampleProgressiveTopology() {
	world := metascritic.GenerateWorld(metascritic.WorldConfig{
		Seed:   2,
		Metros: metascritic.DefaultMetros(0.06),
	})
	pipe := metascritic.NewPipeline(world)
	pipe.SeedPublicMeasurements(5, rand.New(rand.NewSource(1)))
	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = 400
	cfg.Rank.MaxRank = 5
	cfg.Rank.Iterations = 4
	res, err := pipe.Run(context.Background(), world.G.MetroOfName("Osaka").Index, cfg)
	if err != nil {
		panic(err)
	}

	prog := metascritic.NewProgressiveTopology(res)
	high := prog.AtConfidence(0.9)
	all := prog.AtConfidence(0.0)
	fmt.Println(len(high) <= len(all))
	fmt.Println(len(all) > 0)
	// Output:
	// true
	// true
}
