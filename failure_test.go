package metascritic

import (
	"math/rand"
	"testing"

	"metascritic/internal/ipmap"
	"metascritic/internal/netsim"
	"metascritic/internal/obs"
)

// Failure-injection tests: the pipeline must degrade gracefully, never
// panic, under hostile conditions — zero budget, no probes, broken hop
// resolution, empty metros.

func TestPipelineZeroBudget(t *testing.T) {
	w := smallWorld(21)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(5, rng)
	cfg := DefaultConfig()
	cfg.MaxMeasurements = 0
	cfg.Rank.MaxRank = 6
	cfg.Rank.Iterations = 4
	res := mustRun(t, p, w.G.MetroOfName("Tokyo").Index, cfg)
	if res.Measurements != 0 {
		t.Fatalf("zero budget issued %d measurements", res.Measurements)
	}
	if res.Ratings == nil || res.Rank < 1 {
		t.Fatalf("zero-budget run should still complete from public data")
	}
}

func TestPipelineNoPublicSeed(t *testing.T) {
	// No public traces at all: only bootstrap + targeted measurements.
	w := smallWorld(22)
	p := NewPipeline(w)
	cfg := DefaultConfig()
	cfg.MaxMeasurements = 600
	cfg.BatchSize = 60
	cfg.Rank.MaxRank = 6
	cfg.Rank.Iterations = 4
	res := mustRun(t, p, w.G.MetroOfName("Osaka").Index, cfg)
	if res.Measurements == 0 {
		t.Fatalf("expected targeted measurements from a cold start")
	}
	if res.Estimate.Mask.Count() == 0 {
		t.Fatalf("cold start should still observe entries")
	}
}

func TestStoreWithBrokenResolver(t *testing.T) {
	// A resolver that fails on every hop: traces teach nothing, but
	// nothing crashes and estimates stay empty.
	w := smallWorld(23)
	e := NewPipeline(w).Engine
	broken := func(a ipmap.Addr) (ipmap.Info, bool) { return ipmap.Info{}, false }
	store := obs.NewStore(w.G, broken)
	pr := w.Probes[0]
	for dst := 0; dst < 40; dst++ {
		if dst == pr.AS {
			continue
		}
		if f := store.AddTrace(e.Run(pr.AS, pr.Metro, dst)); len(f) != 0 {
			t.Fatalf("broken resolver produced findings")
		}
	}
	est := store.Estimate(0, w.G.Metros[0].Members, obs.NegMetascritic)
	if est.Mask.Count() != 0 {
		t.Fatalf("broken resolver should observe nothing")
	}
}

func TestStoreWithLyingResolver(t *testing.T) {
	// A resolver that misattributes every hop to a single AS: crossings
	// collapse, so no direct findings between distinct ASes appear.
	w := smallWorld(24)
	e := NewPipeline(w).Engine
	lying := func(a ipmap.Addr) (ipmap.Info, bool) {
		return ipmap.Info{AS: 0, Metro: 0, IXP: -1}, a != 0
	}
	store := obs.NewStore(w.G, lying)
	pr := w.Probes[0]
	for dst := 0; dst < 40; dst++ {
		if dst == pr.AS {
			continue
		}
		for _, f := range store.AddTrace(e.Run(pr.AS, pr.Metro, dst)) {
			if f.Pair.A != f.Pair.B {
				t.Fatalf("single-AS resolver cannot yield cross-AS findings: %+v", f)
			}
		}
	}
}

func TestRunMetroOnEmptyishMetro(t *testing.T) {
	// A metro whose members all lack probes and targets still completes
	// without panicking (the São Paulo scenario taken to the extreme).
	w := netsim.Generate(netsim.Config{
		Seed: 25,
		Metros: append(netsim.DefaultMetros(0.06), netsim.MetroSpec{
			Name: "Nowhere", Country: "ZZ", Continent: "AF", NumASes: 20, VPCoverage: 0, Primary: false,
		}),
	})
	p := NewPipeline(w)
	cfg := DefaultConfig()
	cfg.MaxMeasurements = 200
	cfg.BatchSize = 40
	cfg.Rank.MaxRank = 4
	cfg.Rank.Iterations = 3
	res := mustRun(t, p, w.G.MetroOfName("Nowhere").Index, cfg)
	if res.Ratings == nil {
		t.Fatalf("no ratings for empty metro")
	}
	// Confidence should be low across the board: few strong inferences.
	strong := 0
	n := len(res.Members)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if res.Ratings.At(i, j) > 0.9 {
				strong++
			}
		}
	}
	if n > 1 && strong > n*n/4 {
		t.Fatalf("probe-less metro produced %d high-confidence inferences", strong)
	}
}
