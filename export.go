package metascritic

import (
	"encoding/json"
	"io"
)

// Export is the serializable form of a metro result: everything a
// downstream consumer (BGP-hijack monitor, topology modeler, …) needs,
// with ASNs instead of internal indices.
type Export struct {
	Metro         string       `json:"metro"`
	MemberASNs    []int        `json:"member_asns"`
	EffectiveRank int          `json:"effective_rank"`
	Threshold     float64      `json:"threshold"`
	Measurements  int          `json:"measurements"`
	Links         []ExportLink `json:"links"`
}

// ExportLink is one measured or inferred link.
type ExportLink struct {
	ASNA     int     `json:"asn_a"`
	ASNB     int     `json:"asn_b"`
	Rating   float64 `json:"rating"`
	Measured bool    `json:"measured"`
}

// Export converts a result into its serializable form, including every
// link whose rating clears minRating (measured links always included).
func (p *Pipeline) Export(res *Result, minRating float64) Export {
	g := p.World.G
	out := Export{
		Metro:         g.Metros[res.Metro].Name,
		EffectiveRank: res.Rank,
		Threshold:     res.Threshold,
		Measurements:  res.Measurements,
	}
	for _, ai := range res.Members {
		out.MemberASNs = append(out.MemberASNs, g.ASes[ai].ASN)
	}
	prog := NewProgressiveTopology(res)
	for _, l := range prog.AtConfidence(minRating) {
		out.Links = append(out.Links, ExportLink{
			ASNA:     g.ASes[l.Pair.A].ASN,
			ASNB:     g.ASes[l.Pair.B].ASN,
			Rating:   l.Rating,
			Measured: l.Measured,
		})
	}
	return out
}

// WriteJSON serializes the export as indented JSON.
func (e Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
