package metascritic

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Export is the serializable form of a metro result: everything a
// downstream consumer (BGP-hijack monitor, topology modeler, …) needs,
// with ASNs instead of internal indices.
type Export struct {
	Metro         string       `json:"metro"`
	MemberASNs    []int        `json:"member_asns"`
	EffectiveRank int          `json:"effective_rank"`
	Threshold     float64      `json:"threshold"`
	Measurements  int          `json:"measurements"`
	Links         []ExportLink `json:"links"`
}

// ExportLink is one measured or inferred link.
type ExportLink struct {
	ASNA     int     `json:"asn_a"`
	ASNB     int     `json:"asn_b"`
	Rating   float64 `json:"rating"`
	Measured bool    `json:"measured"`
}

// ExportContext converts a result into its serializable form, including
// every link whose rating clears minRating (measured links always
// included). Unlike Export it reports problems instead of exporting
// garbage: a nil or incomplete result, a NaN cutoff, or a ratings matrix
// that lost its symmetry invariant (C_m is symmetric by construction; an
// asymmetric matrix means the result was corrupted in transit).
func (p *Pipeline) ExportContext(ctx context.Context, res *Result, minRating float64) (Export, error) {
	if err := ctx.Err(); err != nil {
		return Export{}, fmt.Errorf("metascritic: export: %w", err)
	}
	if res == nil || res.Ratings == nil || res.Estimate == nil {
		return Export{}, fmt.Errorf("metascritic: export: %w: result is nil or incomplete", ErrInvalidConfig)
	}
	if math.IsNaN(minRating) {
		return Export{}, fmt.Errorf("metascritic: export: %w: minRating is NaN", ErrInvalidConfig)
	}
	if res.Metro < 0 || res.Metro >= len(p.World.G.Metros) {
		return Export{}, fmt.Errorf("metascritic: export: %w: metro index %d out of range", ErrInvalidConfig, res.Metro)
	}
	n := len(res.Members)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := res.Ratings.At(i, j) - res.Ratings.At(j, i); d > 1e-9 || d < -1e-9 {
				return Export{}, fmt.Errorf("metascritic: export: ratings asymmetric at (%d,%d): %v vs %v",
					i, j, res.Ratings.At(i, j), res.Ratings.At(j, i))
			}
		}
	}
	return p.Export(res, minRating), nil
}

// Export converts a result into its serializable form, including every
// link whose rating clears minRating (measured links always included).
func (p *Pipeline) Export(res *Result, minRating float64) Export {
	g := p.World.G
	out := Export{
		Metro:         g.Metros[res.Metro].Name,
		EffectiveRank: res.Rank,
		Threshold:     res.Threshold,
		Measurements:  res.Measurements,
	}
	for _, ai := range res.Members {
		out.MemberASNs = append(out.MemberASNs, g.ASes[ai].ASN)
	}
	prog := NewProgressiveTopology(res)
	for _, l := range prog.AtConfidence(minRating) {
		out.Links = append(out.Links, ExportLink{
			ASNA:     g.ASes[l.Pair.A].ASN,
			ASNB:     g.ASes[l.Pair.B].ASN,
			Rating:   l.Rating,
			Measured: l.Measured,
		})
	}
	return out
}

// WriteJSON serializes the export as indented JSON. Errors are wrapped
// with the metro so a failed write in a multi-metro batch is attributable.
func (e Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e); err != nil {
		return fmt.Errorf("metascritic: write JSON export for metro %s: %w", e.Metro, err)
	}
	return nil
}
