package metascritic_test

// Pipeline-level equivalence for the bounded route cache: a full
// RunMetro on an InternetMetros world under a tight byte budget must be
// byte-identical to the unbounded run. Eviction only ever discards
// memoized propagation results — recomputing them is deterministic per
// topology — so the budget is purely a memory/time trade. This is the
// end-to-end companion to internal/bgp's TestBudgetedCacheByteIdentical.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"metascritic"
	"metascritic/internal/netsim"
)

func TestBudgetedPipelineByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 2000-AS InternetMetros world")
	}
	// InternetMetros clamps to its 2000-AS floor — the smallest world
	// with the dense-metro shape the budget work targets.
	w := netsim.Generate(netsim.Config{Seed: 7, Metros: netsim.InternetMetros(2000)})
	metro := w.PrimaryMetros()[0]

	run := func(budget int64) (*metascritic.Result, int64) {
		p := metascritic.NewPipeline(w)
		p.SetRouteCacheBudget(budget)
		// Strided public-trace sample (as in BenchmarkRunMetro100k):
		// enough evidence to drive a real run without seeding every probe.
		rng := rand.New(rand.NewSource(1))
		stride := len(w.Probes) / 300
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(w.Probes); i += stride {
			pr := w.Probes[i]
			if dst := rng.Intn(w.G.N()); dst != pr.AS {
				p.Store.AddTrace(p.Engine.Run(pr.AS, pr.Metro, dst))
			}
		}
		cfg := metascritic.DefaultConfig()
		cfg.MaxMeasurements = 800
		cfg.BatchSize = 60
		cfg.Rank.MaxRank = 6
		cfg.Rank.Iterations = 4
		res, err := p.Snapshot().Run(context.Background(), metro, cfg)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		// Timings are telemetry, outside the determinism contract.
		res.Timings = metascritic.PhaseTimings{}
		return res, p.Engine.Cache.Stats().Evicted
	}

	unbounded, evicted := run(0)
	if evicted != 0 {
		t.Fatalf("unbounded run evicted %d entries", evicted)
	}
	// ~2-3 route views per shard at 2000 ASes: far below the run's
	// working set, so eviction and recompute churn are guaranteed.
	budgeted, evicted := run(512 << 10)
	if evicted == 0 {
		t.Fatal("budgeted run never evicted — budget did not engage")
	}
	if !reflect.DeepEqual(unbounded, budgeted) {
		t.Fatalf("budgeted run differs from unbounded run (evicted %d)", evicted)
	}
}
