package metascritic

import (
	"math/rand"
	"testing"

	"metascritic/internal/asgraph"
)

// topoResult runs a small metro once per test binary.
func topoResult(t *testing.T) (*Pipeline, *Result) {
	t.Helper()
	w := smallWorld(9)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(8, rng)
	cfg := DefaultConfig()
	cfg.BatchSize = 100
	cfg.MaxMeasurements = 2500
	cfg.Rank.MaxRank = 12
	cfg.Rank.Iterations = 6
	metro := w.G.MetroOfName("Singapore").Index
	return p, mustRun(t, p, metro, cfg)
}

func TestProgressiveTopologyOrdering(t *testing.T) {
	_, res := topoResult(t)
	prog := NewProgressiveTopology(res)
	if prog.Len() == 0 {
		t.Fatalf("no candidate links")
	}
	links := prog.AtConfidence(-1)
	for k := 1; k < len(links); k++ {
		if links[k].Rating > links[k-1].Rating+1e-12 {
			t.Fatalf("links not sorted by rating")
		}
	}
	// Measured links lead with rating 1.
	if !links[0].Measured || links[0].Rating != 1 {
		t.Fatalf("first link should be measured: %+v", links[0])
	}
}

func TestProgressiveAtConfidence(t *testing.T) {
	_, res := topoResult(t)
	prog := NewProgressiveTopology(res)
	hi := prog.AtConfidence(0.9)
	lo := prog.AtConfidence(0.3)
	if len(hi) > len(lo) {
		t.Fatalf("lower threshold must include at least as many links")
	}
	for _, l := range hi {
		if l.Rating < 0.9 {
			t.Fatalf("link below requested confidence: %+v", l)
		}
	}
	if got := prog.AtConfidence(2); len(got) != 0 {
		t.Fatalf("impossible threshold should yield nothing")
	}
}

func TestProgressiveSweep(t *testing.T) {
	_, res := topoResult(t)
	prog := NewProgressiveTopology(res)
	prevThr := 2.0
	prevLen := 0
	calls := 0
	prog.Sweep(func(thr float64, links []ScoredLink) bool {
		calls++
		if thr >= prevThr {
			t.Fatalf("sweep thresholds not strictly decreasing")
		}
		if len(links) <= prevLen {
			t.Fatalf("sweep link sets not growing")
		}
		prevThr = thr
		prevLen = len(links)
		return calls < 5 // early stop works
	})
	if calls != 5 && prog.Len() >= 5 {
		t.Fatalf("sweep ignored early stop: %d calls", calls)
	}
}

func TestProbabilisticTopology(t *testing.T) {
	p, res := topoResult(t)
	prob := p.NewProbabilisticTopology(res, 7)

	// Calibration curve: thresholds increasing, precision monotone
	// non-decreasing and within [0,1].
	curve := prob.Curve()
	if len(curve) < 5 {
		t.Fatalf("curve too short")
	}
	for k, c := range curve {
		if c.Precision < 0 || c.Precision > 1 {
			t.Fatalf("precision out of range: %+v", c)
		}
		if k > 0 {
			if c.Threshold <= curve[k-1].Threshold {
				t.Fatalf("thresholds not increasing")
			}
			if c.Precision < curve[k-1].Precision {
				t.Fatalf("precision not monotone after isotonic pass")
			}
		}
	}

	// Probabilities: measured links 1, others within the curve's range
	// and increasing with rating.
	links := prob.Links()
	for _, l := range links {
		pr := prob.Probability(l)
		if pr < 0 || pr > 1 {
			t.Fatalf("probability out of range")
		}
		if l.Measured && pr != 1 {
			t.Fatalf("measured link probability %v", pr)
		}
	}
	if prob.Probability(ScoredLink{Rating: -0.5}) != 0 {
		t.Fatalf("negative rating should have probability 0")
	}
	hi := prob.Probability(ScoredLink{Rating: 0.95})
	lo := prob.Probability(ScoredLink{Rating: 0.15})
	if hi < lo {
		t.Fatalf("probability should grow with rating: %v < %v", hi, lo)
	}

	// Expected links consistent with sampling.
	exp := prob.ExpectedLinks()
	if exp <= 0 || exp > float64(len(links)) {
		t.Fatalf("expected links %v out of range", exp)
	}
	mean, std := prob.EstimateProperty(60, 1, func(ls []asgraph.Pair) float64 {
		return float64(len(ls))
	})
	if mean < exp-4*std-3 || mean > exp+4*std+3 {
		t.Fatalf("Monte-Carlo mean %v far from expectation %v (std %v)", mean, exp, std)
	}

	// Sampling is deterministic given a seed.
	s1 := prob.Sample(rand.New(rand.NewSource(5)))
	s2 := prob.Sample(rand.New(rand.NewSource(5)))
	if len(s1) != len(s2) {
		t.Fatalf("sampling not deterministic")
	}
	for k := range s1 {
		if s1[k] != s2[k] {
			t.Fatalf("sampling not deterministic at %d", k)
		}
	}
}

func TestEstimatePropertyDegenerate(t *testing.T) {
	p, res := topoResult(t)
	prob := p.NewProbabilisticTopology(res, 7)
	mean, std := prob.EstimateProperty(0, 1, func(ls []asgraph.Pair) float64 { return 1 })
	if mean != 1 || std != 0 {
		t.Fatalf("single-sample estimate wrong: %v %v", mean, std)
	}
}
