// Internet flattening (§6, Table 3): measure how metAScritic's measured
// and inferred peering links shorten AS paths and reduce reliance on
// transit providers.
//
//	go run ./examples/flattening
package main

import (
	"fmt"

	"metascritic/experiments"
)

func main() {
	h := experiments.NewHarness(experiments.Options{
		Scale:  0.15,
		Seed:   11,
		Budget: 4000,
	})
	fmt.Printf("world: %d ASes; computing flattening metrics per metro...\n\n", h.W.G.N())

	rows, tbl := experiments.Table3(h)
	fmt.Println(tbl.String())

	// Aggregate the headline numbers.
	var shorter, provDrop float64
	n := 0
	for _, r := range rows {
		if r.Metro == "Global" {
			continue
		}
		shorter += r.ShorterInf
		provDrop += r.ProvBGP - r.ProvInf
		n++
	}
	fmt.Printf("on average, %.1f%% of paths from affected ASes get shorter and the\n", 100*shorter/float64(n))
	fmt.Printf("provider-path fraction drops by %.1f points once inferences are added\n", 100*provDrop/float64(n))
}
