// Quickstart: generate a small synthetic Internet, run metAScritic on one
// metro, and inspect the inferred topology.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"metascritic"
)

func main() {
	// 1. Generate a world. Scale 0.15 keeps this example under a few
	//    seconds; 1.0 approaches the paper's metro sizes.
	world := metascritic.GenerateWorld(metascritic.WorldConfig{
		Seed:   42,
		Metros: metascritic.DefaultMetros(0.15),
	})
	fmt.Printf("generated %d ASes across %d metros (%d vantage points)\n",
		world.G.N(), len(world.G.Metros), len(world.Probes))

	// 2. Build a pipeline and seed it with "public" traceroutes — the
	//    RIPE Atlas / CAIDA Ark archives of the paper.
	pipe := metascritic.NewPipeline(world)
	rng := rand.New(rand.NewSource(1))
	seeded := pipe.SeedPublicMeasurements(10, rng)
	fmt.Printf("seeded %d public traceroutes\n", seeded)

	// 3. Run metAScritic on a metro: iterative rank estimation with
	//    targeted traceroutes, then hybrid matrix completion.
	metro := world.G.MetroOfName("Singapore")
	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = 5000
	res, err := pipe.Run(context.Background(), metro.Index, cfg)
	if err != nil {
		log.Fatalf("run %s: %v", metro.Name, err)
	}

	fmt.Printf("\n%s: %d member ASes\n", metro.Name, len(res.Members))
	fmt.Printf("estimated effective rank r = %d\n", res.Rank)
	fmt.Printf("targeted traceroutes issued: %d (budget %d)\n", res.Measurements, cfg.MaxMeasurements)
	fmt.Printf("observed entries in E_m: %d of %d pairs\n",
		res.Estimate.Mask.Count()/2, len(res.Members)*(len(res.Members)-1)/2)

	// 4. Translate ratings into links. Sweeping the threshold trades
	//    precision for recall (§5.1).
	for _, thr := range []float64{0.9, 0.7, 0.5, 0.3} {
		links := res.LinksAbove(thr)
		// Because this is a simulation we can check against ground truth.
		correct := 0
		for _, pr := range links {
			if world.Truths[metro.Index].Has(pr.A, pr.B) {
				correct++
			}
		}
		prec := 0.0
		if len(links) > 0 {
			prec = float64(correct) / float64(len(links))
		}
		fmt.Printf("λ = %.1f: %4d links, precision vs ground truth %.2f\n", thr, len(links), prec)
	}

	// 5. Per-pair confidence scores are available directly.
	a, b := res.Members[0], res.Members[1]
	fmt.Printf("\nrating(AS%d, AS%d) = %.3f\n",
		world.G.ASes[a].ASN, world.G.ASes[b].ASN, res.Rating(a, b))
}
