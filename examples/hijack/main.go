// Hijack-impact prediction (§6, Fig. 7): compare how well three
// topologies — the public BGP view, the view plus measured links, and the
// view plus metAScritic's inferences — predict which ASes a prefix hijack
// captures.
//
//	go run ./examples/hijack
package main

import (
	"fmt"

	"metascritic/experiments"
)

func main() {
	h := experiments.NewHarness(experiments.Options{
		Scale:  0.15,
		Seed:   7,
		Budget: 4000,
	})
	fmt.Printf("world: %d ASes; running metAScritic on the six study metros...\n", h.W.G.N())

	res, tbl := experiments.Fig7(h)
	fmt.Println()
	fmt.Println(tbl.String())

	gain := res.MeanInferredHi - res.MeanBGP
	fmt.Printf("inferred links improve mean hijack-prediction accuracy by %.1f%% over the public BGP view\n", 100*gain)
	fmt.Printf("(%d announcement configurations across metro pairs)\n", res.Configs)

	// The λ band: prediction accuracy barely depends on the link
	// threshold, echoing the paper's shaded region.
	var bandWidth float64
	for k := range res.AccInferredHi {
		bandWidth += res.AccInferredHi[k] - res.AccInferredLo[k]
	}
	bandWidth /= float64(len(res.AccInferredHi))
	fmt.Printf("mean λ-band width (λ ∈ [0.3, 0.9]): %.3f\n", bandWidth)
}
