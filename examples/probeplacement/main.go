// Probe placement (§5.1): use metAScritic's probabilistic topology to rank
// where a measurement platform (e.g. RIPE Atlas) should deploy its next
// vantage points — the ASes whose rows carry the most residual
// uncertainty.
//
//	go run ./examples/probeplacement
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"metascritic"
)

func main() {
	world := metascritic.GenerateWorld(metascritic.WorldConfig{
		Seed:   5,
		Metros: metascritic.DefaultMetros(0.15),
	})
	pipe := metascritic.NewPipeline(world)
	rng := rand.New(rand.NewSource(2))
	pipe.SeedPublicMeasurements(10, rng)

	metro := world.G.MetroOfName("SaoPaulo") // the paper's hardest metro
	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = 4000
	res, err := pipe.Run(context.Background(), metro.Index, cfg)
	if err != nil {
		log.Fatalf("run %s: %v", metro.Name, err)
	}
	fmt.Printf("%s: %d members, rank %d, %d targeted traceroutes\n\n",
		metro.Name, len(res.Members), res.Rank, res.Measurements)

	// Residual uncertainty of a pair: unobserved entries whose completed
	// rating sits near the decision boundary contribute the most; a new
	// probe inside an AS would let us *measure* its row instead of
	// inferring it (§5.1: "the best locations could be those predicted to
	// remove the most uncertainty from the topology").
	type cand struct {
		as          int
		uncertainty float64
		unobserved  int
	}
	var cands []cand
	n := len(res.Members)
	for i := 0; i < n; i++ {
		ai := res.Members[i]
		if world.HasProbe(ai) {
			continue // already hosts a vantage point
		}
		var u float64
		unobs := 0
		for j := 0; j < n; j++ {
			if j == i || res.Estimate.Mask.Has(i, j) {
				continue
			}
			unobs++
			// Ratings near the threshold are the least certain.
			u += 1 - math.Min(1, math.Abs(res.Ratings.At(i, j)-res.Threshold)/0.5)
		}
		cands = append(cands, cand{as: ai, uncertainty: u, unobserved: unobs})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].uncertainty > cands[b].uncertainty })

	fmt.Println("top candidate ASes for new vantage points (highest residual uncertainty):")
	for k, c := range cands {
		if k >= 10 {
			break
		}
		a := world.G.ASes[c.as]
		fmt.Printf("  %2d. AS%-6d %-10v policy=%-11v unobserved entries=%-4d uncertainty=%.1f\n",
			k+1, a.ASN, a.Class, a.Policy, c.unobserved, c.uncertainty)
	}
}
