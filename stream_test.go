package metascritic

// Streaming-pipeline tests: ApplyEvolution must keep every derived layer
// (BGP topology, route cache, address plan, hitlist, evidence epoch)
// equivalent to rebuilding it from the mutated world, and Rescore must
// measure exactly what a cold full rerun over the same evidence measures.

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"metascritic/internal/bgp"
	"metascritic/internal/netsim"
	"metascritic/internal/obs"
)

// requireRoutesMatchWorld propagates every destination on a cold topology
// rebuilt from the (mutated) world and compares it against the pipeline's
// live, incrementally-maintained cache — adjacency mirroring, scoped
// invalidation and tie-breaking all have to line up for this to hold.
func requireRoutesMatchWorld(t *testing.T, p *Pipeline) {
	t.Helper()
	cold := bgp.NewRouteCache(bgp.FromGraph(p.World.G))
	for d := 0; d < p.World.G.N(); d++ {
		got, want := p.Engine.Cache.RoutesTo(d), cold.RoutesTo(d)
		if got.Len() != want.Len() {
			t.Fatalf("dest %d: live cache has %d ASes, cold rebuild %d", d, got.Len(), want.Len())
		}
		for a := 0; a < got.Len(); a++ {
			if got.At(a) != want.At(a) {
				t.Fatalf("dest %d: AS %d route %+v, cold rebuild %+v", d, a, got.At(a), want.At(a))
			}
		}
	}
}

func TestApplyEvolutionMirrorsWorld(t *testing.T) {
	w := smallWorld(11)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(4, rng) // warm the route cache with real traffic

	spec := netsim.EvolveSpec{LinkDowns: 12, Depeerings: 4, LinkUps: 12, NewASes: 3, IXPJoins: 4, Workers: 3}
	hitlistBefore := len(p.Hitlist)
	for epoch := uint32(1); epoch <= 3; epoch++ {
		batch, st, err := p.Evolve(rng, spec)
		if err != nil {
			t.Fatalf("epoch %d: Evolve: %v", epoch, err)
		}
		if w.Epoch != epoch || st.Epoch != epoch {
			t.Fatalf("epoch %d: world at %d, stats say %d", epoch, w.Epoch, st.Epoch)
		}
		if p.Store.Epoch() != epoch {
			t.Fatalf("epoch %d: evidence store at epoch %d", epoch, p.Store.Epoch())
		}
		if st.Events != len(batch.Events) || st.NewASes == 0 || st.NewAddresses == 0 {
			t.Fatalf("epoch %d: implausible stats %+v", epoch, st)
		}
		requireRoutesMatchWorld(t, p)
		// Keep traffic flowing so the next epoch invalidates a warm cache.
		p.SeedPublicMeasurements(2, rng)
	}
	if len(p.Hitlist) <= hitlistBefore {
		t.Fatalf("hitlist did not grow with responsive arrivals (%d -> %d)", hitlistBefore, len(p.Hitlist))
	}
	if got := p.Engine.Cache.Stats().Epoch; got == 0 {
		t.Fatalf("route cache epoch never advanced")
	}
}

// TestApplyEvolutionScopedInvalidation pins that a no-arrival batch keeps
// some cached destinations alive (the point of scoped invalidation) while
// still serving routes identical to a cold rebuild.
func TestApplyEvolutionScopedInvalidation(t *testing.T) {
	w := smallWorld(13)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(3))
	p.SeedPublicMeasurements(6, rng)

	spec := netsim.EvolveSpec{LinkDowns: 6, Depeerings: 2, LinkUps: 6, Workers: 2}
	_, st, err := p.Evolve(rng, spec)
	if err != nil {
		t.Fatalf("Evolve: %v", err)
	}
	if st.NewASes != 0 {
		t.Fatalf("spec asked for no arrivals, got %d", st.NewASes)
	}
	if st.Retained == 0 {
		t.Fatalf("scoped invalidation retained nothing (invalidated %d)", st.Invalidated)
	}
	requireRoutesMatchWorld(t, p)
}

func TestApplyEvolutionRejectsEpochSkew(t *testing.T) {
	p := NewPipeline(smallWorld(14))
	if _, err := p.ApplyEvolution(&netsim.EventBatch{Epoch: 5}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("stale batch: got %v, want ErrInvalidConfig", err)
	}
}

// TestRescoreMatchesColdRerun is the acceptance pin of the streaming PR:
// after a churn batch and a round of post-churn traces, the incremental
// re-score's measured estimate must be byte-identical to a cold full
// rerun (rank sweep and all) over the same evidence.
func TestRescoreMatchesColdRerun(t *testing.T) {
	w := smallWorld(12)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(2))
	p.SeedPublicMeasurements(6, rng)

	metro := w.G.MetroOfName("Tokyo").Index
	cfg := DefaultConfig()
	cfg.BatchSize = 80
	cfg.MaxMeasurements = 1200
	cfg.Rank.MaxRank = 8
	cfg.Rank.Iterations = 5
	prev := mustRun(t, p, metro, cfg)

	// Churn without arrivals so prev's factors stay dimensionally
	// compatible and the warm path is exercised.
	spec := netsim.EvolveSpec{LinkDowns: 10, Depeerings: 3, LinkUps: 10, IXPJoins: 3, Workers: 2}
	if _, _, err := p.Evolve(rng, spec); err != nil {
		t.Fatalf("Evolve: %v", err)
	}
	p.SeedPublicMeasurements(4, rng)

	ctx := context.Background()
	t0 := time.Now()
	inc, err := p.Rescore(ctx, prev, cfg)
	incWall := time.Since(t0)
	if err != nil {
		t.Fatalf("Rescore: %v", err)
	}

	coldCfg := cfg
	coldCfg.MaxMeasurements = 0
	coldCfg.BootstrapPerStrategy = 0
	t0 = time.Now()
	cold, err := p.Snapshot().Run(ctx, metro, coldCfg)
	coldWall := time.Since(t0)
	if err != nil {
		t.Fatalf("cold Run: %v", err)
	}
	t.Logf("incremental %v vs cold %v (%.1f%%)", incWall, coldWall, 100*float64(incWall)/float64(coldWall))

	// Byte-identical estimates: same dense data, same mask.
	ie, ce := inc.Estimate, cold.Estimate
	if len(ie.E.Data) != len(ce.E.Data) {
		t.Fatalf("estimate sizes differ: %d vs %d", len(ie.E.Data), len(ce.E.Data))
	}
	for k := range ie.E.Data {
		if ie.E.Data[k] != ce.E.Data[k] {
			t.Fatalf("estimate data diverges at %d: %v vs %v", k, ie.E.Data[k], ce.E.Data[k])
		}
	}
	if ie.Mask.Count() != ce.Mask.Count() {
		t.Fatalf("mask counts differ: %d vs %d", ie.Mask.Count(), ce.Mask.Count())
	}
	for i := 0; i < ie.Mask.N(); i++ {
		for j := i + 1; j < ie.Mask.N(); j++ {
			if ie.Mask.Has(i, j) != ce.Mask.Has(i, j) {
				t.Fatalf("mask diverges at (%d,%d)", i, j)
			}
		}
	}

	if inc.Rank != prev.Rank || inc.Lambda != prev.Lambda || inc.FeatureWeight != prev.FeatureWeight {
		t.Fatalf("Rescore changed warm hyperparameters: rank %d->%d λ %v->%v fw %v->%v",
			prev.Rank, inc.Rank, prev.Lambda, inc.Lambda, prev.FeatureWeight, inc.FeatureWeight)
	}
	if inc.Measurements != 0 {
		t.Fatalf("Rescore issued %d measurements", inc.Measurements)
	}
	if inc.Factors == nil {
		t.Fatalf("Rescore returned no factors for the next warm start")
	}
	if !inc.Ratings.IsSymmetric(1e-9) {
		t.Fatalf("rescored ratings not symmetric")
	}
	if inc.Threshold < 0.1 || inc.Threshold > 0.95 {
		t.Fatalf("threshold %v outside the paper's operating range", inc.Threshold)
	}
}

// TestRescoreAfterArrivalFallsBackCold pins the growth path: new members
// make prev's factors incompatible, and Rescore must still produce a
// well-formed result over the enlarged metro.
func TestRescoreAfterArrivalFallsBackCold(t *testing.T) {
	w := smallWorld(15)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(4))
	p.SeedPublicMeasurements(5, rng)

	metro := w.G.MetroOfName("Tokyo").Index
	cfg := DefaultConfig()
	cfg.BatchSize = 60
	cfg.MaxMeasurements = 600
	cfg.Rank.MaxRank = 6
	cfg.Rank.Iterations = 4
	prev := mustRun(t, p, metro, cfg)

	before := len(w.G.Metros[metro].Members)
	spec := netsim.EvolveSpec{NewASes: 25, Workers: 2}
	for w.Epoch < 8 && len(w.G.Metros[metro].Members) == before {
		if _, _, err := p.Evolve(rng, spec); err != nil {
			t.Fatalf("Evolve: %v", err)
		}
	}
	if len(w.G.Metros[metro].Members) == before {
		t.Skip("no arrival landed in the study metro")
	}
	p.SeedPublicMeasurements(3, rng)

	res, err := p.Rescore(context.Background(), prev, cfg)
	if err != nil {
		t.Fatalf("Rescore: %v", err)
	}
	if len(res.Members) <= len(prev.Members) {
		t.Fatalf("members did not grow: %d -> %d", len(prev.Members), len(res.Members))
	}
	if res.Ratings.Rows != len(res.Members) {
		t.Fatalf("ratings sized %d for %d members", res.Ratings.Rows, len(res.Members))
	}
	if !res.Ratings.IsSymmetric(1e-9) {
		t.Fatalf("ratings not symmetric after cold fallback")
	}
}

func TestRescoreValidation(t *testing.T) {
	w := smallWorld(16)
	p := NewPipeline(w)
	cfg := DefaultConfig()
	if _, err := p.Rescore(context.Background(), &Result{Metro: 0}, cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("incomplete prev: got %v, want ErrInvalidConfig", err)
	}
	bad := cfg
	bad.BatchSize = 0
	if _, err := p.Rescore(context.Background(), &Result{Metro: 0}, bad); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("invalid config: got %v, want ErrInvalidConfig", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prev := &Result{Metro: 0, Rank: 3, Ratings: BuildFeatures(w.G, w.G.Metros[0].Members)}
	if _, err := p.Rescore(ctx, prev, cfg); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: got %v, want ErrCanceled", err)
	}
}

// TestRescoreUsesNewEvidence pins that Rescore is not a replay: evidence
// added after prev's run lands in the new estimate.
func TestRescoreUsesNewEvidence(t *testing.T) {
	w := smallWorld(17)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(5))
	p.SeedPublicMeasurements(4, rng)
	metro := w.G.MetroOfName("Osaka").Index
	cfg := DefaultConfig()
	cfg.BatchSize = 60
	cfg.MaxMeasurements = 400
	cfg.Rank.MaxRank = 5
	cfg.Rank.Iterations = 4
	cfg.NegPolicy = obs.NegMetascritic
	prev := mustRun(t, p, metro, cfg)
	baseline := prev.Estimate.Mask.Count()

	p.SeedPublicMeasurements(8, rng)
	res, err := p.Rescore(context.Background(), prev, cfg)
	if err != nil {
		t.Fatalf("Rescore: %v", err)
	}
	if res.Estimate.Mask.Count() < baseline {
		t.Fatalf("rescored estimate lost evidence: %d -> %d", baseline, res.Estimate.Mask.Count())
	}
}

// BenchmarkIncrementalRescore compares the streaming re-score path
// against a cold full rerun on the same post-churn evidence; the
// acceptance bar for the streaming PR is incremental < 25% of cold.
func BenchmarkIncrementalRescore(b *testing.B) {
	w := netsim.Generate(netsim.Config{Seed: 1, Metros: netsim.DefaultMetros(0.15)})
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(6, rng)
	metro := w.G.MetroOfName("Tokyo").Index
	cfg := DefaultConfig()
	cfg.BatchSize = 150
	cfg.MaxMeasurements = 4000
	ctx := context.Background()
	prev, err := p.Run(ctx, metro, cfg)
	if err != nil {
		b.Fatalf("warm run: %v", err)
	}
	spec := netsim.EvolveSpec{LinkDowns: 20, Depeerings: 5, LinkUps: 20, IXPJoins: 5}
	if _, _, err := p.Evolve(rng, spec); err != nil {
		b.Fatalf("Evolve: %v", err)
	}
	p.SeedPublicMeasurements(4, rng)
	coldCfg := cfg
	coldCfg.MaxMeasurements = 0
	coldCfg.BootstrapPerStrategy = 0

	var incNS, coldNS int64
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Rescore(ctx, prev, cfg); err != nil {
				b.Fatal(err)
			}
		}
		incNS = b.Elapsed().Nanoseconds() / int64(b.N)
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Snapshot().Run(ctx, metro, coldCfg); err != nil {
				b.Fatal(err)
			}
		}
		coldNS = b.Elapsed().Nanoseconds() / int64(b.N)
	})
	if incNS > 0 && coldNS > 0 {
		ratio := float64(incNS) / float64(coldNS)
		b.ReportMetric(ratio, "inc/cold-ratio")
		if ratio > 0.25 {
			b.Errorf("incremental re-score took %.0f%% of the cold rerun, want < 25%%", 100*ratio)
		}
	}
}
