// Package experiments exposes the paper-reproduction experiment drivers:
// one function per table and figure of the evaluation (§4, §6, appendices).
// Each driver returns structured results plus a renderable text table. See
// DESIGN.md for the experiment index and EXPERIMENTS.md for paper-vs-
// measured numbers.
package experiments

import (
	"metascritic/internal/asgraph"
	"metascritic/internal/engine"
	"metascritic/internal/eval"
)

// EngineStats re-exports the concurrent engine's batch statistics, the
// return type of Harness.RunPrimariesParallel.
type EngineStats = engine.RunStats

// Harness owns a generated world and caches per-metro pipeline runs shared
// across experiments.
type Harness = eval.Harness

// Options configures a harness.
type Options = eval.Options

// Table is a renderable text table.
type Table = eval.Table

// Re-exported result types, one per experiment.
type (
	// Fig1Row is one cloud provider's correlation row.
	Fig1Row = eval.Fig1Row
	// Fig3Result bundles one metro's split evaluations.
	Fig3Result = eval.Fig3Result
	// Fig4Result summarizes P_m calibration.
	Fig4Result = eval.Fig4Result
	// Fig5Row summarizes ratings for one probe-coverage category.
	Fig5Row = eval.Fig5Row
	// Fig6Row is one metro's vantage-point coverage breakdown.
	Fig6Row = eval.Fig6Row
	// Fig7Result summarizes hijack-prediction accuracy.
	Fig7Result = eval.Fig7Result
	// Fig8Result compares classifiers on one metro.
	Fig8Result = eval.Fig8Result
	// Fig9Result summarizes link transferability.
	Fig9Result = eval.Fig9Result
	// Fig9MeasuredResult is the measured transferability study.
	Fig9MeasuredResult = eval.Fig9MeasuredResult
	// Fig10Result bundles the controlled rank-recovery experiment.
	Fig10Result = eval.Fig10Result
	// Fig12Bucket groups rows by fill relative to the rank.
	Fig12Bucket = eval.Fig12Bucket
	// Fig15Point is one threshold-sweep operating point.
	Fig15Point = eval.Fig15Point
	// Fig16Row is one metro's link-novelty breakdown.
	Fig16Row = eval.Fig16Row
	// Table3Row is one metro's flattening metrics.
	Table3Row = eval.Table3Row
	// Table4Row aggregates one metro's full results.
	Table4Row = eval.Table4Row
	// E3Row compares measurement budgets.
	E3Row = eval.E3Row
	// E7Row is one negative-inference policy's outcome.
	E7Row = eval.E7Row
	// StrategyRun is one selection strategy's outcome (Table 2/Fig. 11).
	StrategyRun = eval.StrategyRun
	// BatchStat records per-batch discovery progress.
	BatchStat = eval.BatchStat
	// SplitKind selects a holdout scheme.
	SplitKind = eval.SplitKind
	// SplitEval is one split's evaluation outcome.
	SplitEval = eval.SplitEval
	// ValidationSet is one external validation dataset.
	ValidationSet = eval.ValidationSet
)

// Split kinds.
const (
	Stratified    = eval.Stratified
	RandomSplit   = eval.RandomSplit
	CompletelyOut = eval.CompletelyOut
)

// DefaultOptions returns laptop-scale experiment settings.
func DefaultOptions() Options { return eval.DefaultOptions() }

// NewHarness generates a world and seeds public measurements.
func NewHarness(opt Options) *Harness { return eval.NewHarness(opt) }

// Experiment drivers, one per paper table/figure.
var (
	// Fig1 computes the feature / co-peering correlation matrices.
	Fig1 = eval.Fig1
	// Fig3 evaluates precision-recall under the two splits per metro.
	Fig3 = eval.Fig3
	// Fig4 evaluates the calibration of P_m.
	Fig4 = eval.Fig4
	// Fig5 relates probe coverage to inferred-rating magnitude.
	Fig5 = eval.Fig5
	// Fig6 computes vantage-point coverage per metro.
	Fig6 = eval.Fig6
	// Fig7 runs the hijack-prediction comparison.
	Fig7 = eval.Fig7
	// Fig8 compares metAScritic with Random Forest and NCF.
	Fig8 = eval.Fig8
	// Fig9 validates geographic transferability from ground truth.
	Fig9 = eval.Fig9
	// Fig9Measured replays the E.4 measurement campaign.
	Fig9Measured = eval.Fig9Measured
	// Fig10 reruns the controlled rank-recovery experiment.
	Fig10 = eval.Fig10
	// Fig11 tracks per-batch discovery for every strategy.
	Fig11 = eval.Fig11
	// Fig12 relates row fill to accuracy.
	Fig12 = eval.Fig12
	// Fig13And14 computes Shapley summaries and a force explanation.
	Fig13And14 = eval.Fig13And14
	// Fig15 sweeps the link threshold λ.
	Fig15 = eval.Fig15
	// Fig16 classifies per-metro links as new or already seen.
	Fig16 = eval.Fig16
	// Table2 compares the six measurement-selection strategies.
	Table2 = eval.Table2
	// Table3 computes the flattening metrics.
	Table3 = eval.Table3
	// Table4 reproduces the detailed per-metro evaluation.
	Table4 = eval.Table4
	// Table5 counts links per AS-class pair.
	Table5 = eval.Table5
	// E3 compares measurement budgets to the exhaustive campaign.
	E3 = eval.E3
	// E7 ablates the non-existence inference policies.
	E7 = eval.E7
	// AblationEpsilon sweeps the exploration fraction ε.
	AblationEpsilon = eval.AblationEpsilon
	// AblationFeatureWeight sweeps the hybrid feature weight.
	AblationFeatureWeight = eval.AblationFeatureWeight
	// AblationTransferability disables cross-metro evidence transfer.
	AblationTransferability = eval.AblationTransferability
	// AblationHierarchicalPrior compares pooled vs no-pooling priors.
	AblationHierarchicalPrior = eval.AblationHierarchicalPrior
)

// Ablation result types.
type (
	// EpsilonAblationRow is one ε setting's outcome.
	EpsilonAblationRow = eval.EpsilonAblationRow
	// FeatureWeightRow is one feature-weight setting's outcome.
	FeatureWeightRow = eval.FeatureWeightRow
	// TransferAblationRow compares local vs transferred evidence.
	TransferAblationRow = eval.TransferAblationRow
	// PriorAblationRow compares prior-initialization variants.
	PriorAblationRow = eval.PriorAblationRow
)

// ClassPair is a canonical pair of AS classes (Table 5 key).
type ClassPair = [2]asgraph.Class
