package experiments

import (
	"strings"
	"testing"
)

// TestFacadeSmoke exercises the public experiment API end to end on a tiny
// world, using only drivers that don't require full pipeline runs (the
// heavyweight drivers are covered by internal/eval's tests).
func TestFacadeSmoke(t *testing.T) {
	h := NewHarness(Options{Scale: 0.06, Seed: 9, PublicPerProbe: 4, Budget: 300, MaxRank: 5})
	if h.W == nil || h.P == nil {
		t.Fatalf("harness incomplete")
	}
	// Fig6 needs no pipeline runs.
	rows, tbl := Fig6(h)
	if len(rows) == 0 {
		t.Fatalf("Fig6 empty")
	}
	if !strings.Contains(tbl.String(), "Fig. 6") {
		t.Fatalf("table title missing")
	}
	// Fig9 reads ground truth only.
	res9, _ := Fig9(h)
	if res9.FracHalf < res9.FracAll {
		t.Fatalf("Fig9 fractions inconsistent")
	}
	// Fig1 reads the graph only.
	rows1, _ := Fig1(h)
	if len(rows1) == 0 {
		t.Fatalf("Fig1 empty")
	}
	// Split constants round-trip through the alias.
	if Stratified.String() != "Stratified" || CompletelyOut.String() != "Completely Out" {
		t.Fatalf("split kind aliases broken")
	}
	if DefaultOptions().Scale == 0 {
		t.Fatalf("default options empty")
	}
}
