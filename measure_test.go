package metascritic

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// measureTestConfig is a laptop-scale config that still exercises
// bootstrap, several targeted batches and the threshold search.
func measureTestConfig() Config {
	cfg := DefaultConfig()
	cfg.BatchSize = 60
	cfg.MaxMeasurements = 1200
	cfg.Rank.MaxRank = 6
	cfg.Rank.Iterations = 4
	return cfg
}

// seededPipeline builds a pipeline over smallWorld(seed) with public
// measurements already ingested.
func seededPipeline(seed int64) *Pipeline {
	w := smallWorld(seed)
	p := NewPipeline(w)
	rng := rand.New(rand.NewSource(1))
	p.SeedPublicMeasurements(6, rng)
	return p
}

// TestRunMetroParallelDeterminism pins the pipeline's central contract:
// with speculative fan-out enabled, every Result field except the Timings
// telemetry is byte-identical to the MeasureWorkers=1 serial path — across
// seeds, metros and worker counts.
func TestRunMetroParallelDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 9} {
		base := seededPipeline(seed)
		for _, metroName := range []string{"Tokyo", "Osaka"} {
			metro := base.World.G.MetroOfName(metroName).Index
			results := map[int]*Result{}
			for _, workers := range []int{1, 4} {
				cfg := measureTestConfig()
				cfg.MeasureWorkers = workers
				res, err := base.Snapshot().Run(context.Background(), metro, cfg)
				if err != nil {
					t.Fatalf("seed %d metro %s workers %d: %v", seed, metroName, workers, err)
				}
				if res.Measurements == 0 {
					t.Fatalf("seed %d metro %s workers %d: no measurements", seed, metroName, workers)
				}
				ms := res.Timings.Measure
				if ms.Workers != workers {
					t.Fatalf("MeasureStats.Workers = %d, want %d", ms.Workers, workers)
				}
				if ms.Committed != res.Measurements {
					t.Fatalf("workers %d: Committed %d != Measurements %d", workers, ms.Committed, res.Measurements)
				}
				if ms.Launched != ms.Committed {
					// No cancellation and the window never exceeds the
					// budget, so every launched trace commits.
					t.Fatalf("workers %d: Launched %d != Committed %d", workers, ms.Launched, ms.Committed)
				}
				if workers == 1 && ms.Batches != 0 {
					t.Fatalf("serial run went through the fan-out path (%d batches)", ms.Batches)
				}
				if workers > 1 && ms.Batches == 0 {
					t.Fatalf("parallel run never used the fan-out path")
				}
				// Timings (including MeasureStats) are telemetry, outside
				// the determinism contract.
				res.Timings = PhaseTimings{}
				results[workers] = res
			}
			if !reflect.DeepEqual(results[1], results[4]) {
				t.Fatalf("seed %d metro %s: parallel result differs from serial", seed, metroName)
			}
			// The sorted-row CSR invariant must survive the full run,
			// including pickThreshold's shuffling of RowEntries results.
			mask := results[4].Estimate.Mask
			for i := 0; i < mask.N(); i++ {
				row := mask.RowView(i)
				for k := 1; k < len(row); k++ {
					if row[k-1] >= row[k] {
						t.Fatalf("mask row %d not strictly sorted after run: %v", i, row)
					}
				}
			}
		}
	}
}

// TestRunMetroBudgetUnderSpeculation forces a budget far smaller than the
// bootstrap plan so the speculative window must truncate: the over-budget
// tail may never be launched, counted or committed.
func TestRunMetroBudgetUnderSpeculation(t *testing.T) {
	p := seededPipeline(6)
	publicIssued := p.Engine.Issued()
	metro := p.World.G.MetroOfName("Tokyo").Index
	cfg := measureTestConfig()
	cfg.MaxMeasurements = 37 // far below the bootstrap plan size
	cfg.MeasureWorkers = 4
	res, err := p.Snapshot().Run(context.Background(), metro, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measurements != cfg.MaxMeasurements {
		t.Fatalf("Measurements = %d, want exactly the budget %d", res.Measurements, cfg.MaxMeasurements)
	}
	ms := res.Timings.Measure
	if ms.Committed != cfg.MaxMeasurements {
		t.Fatalf("Committed = %d, want %d", ms.Committed, cfg.MaxMeasurements)
	}
	if ms.Launched != cfg.MaxMeasurements {
		t.Fatalf("Launched = %d, want %d (over-budget tail must never launch)", ms.Launched, cfg.MaxMeasurements)
	}
	if ms.Discarded == 0 {
		t.Fatalf("expected a discarded over-budget tail, got none")
	}
	// The engine counts every traceroute actually simulated: exactly the
	// public seed plus the budget — speculation never over-issues here.
	if got := p.Engine.Issued() - publicIssued; got != cfg.MaxMeasurements {
		t.Fatalf("engine issued %d targeted traceroutes, want %d", got, cfg.MaxMeasurements)
	}
	if len(res.Calibrations) != res.Measurements {
		t.Fatalf("calibrations %d != measurements %d", len(res.Calibrations), res.Measurements)
	}
}

// countdownCtx is a context whose Err flips to Canceled after n polls —
// a deterministic way to land cancellation in the middle of a fan-out
// (timer-based cancellation would race the run's progress).
type countdownCtx struct {
	left atomic.Int64
	done chan struct{}
	once sync.Once
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{done: make(chan struct{})}
	c.left.Store(n)
	return c
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

// TestRunMetroParallelCancellation cancels mid-fan-out and checks the
// pipeline's cleanup contract: a prompt error wrapping ctx.Err(),
// speculative traces discarded without being committed or counted against
// the budget, the base store untouched, and no corruption of shared state
// (a fresh snapshot still reproduces the uncancelled run exactly).
func TestRunMetroParallelCancellation(t *testing.T) {
	base := seededPipeline(7)
	metro := base.World.G.MetroOfName("Tokyo").Index
	cfg := measureTestConfig()
	cfg.MeasureWorkers = 4

	before, err := base.Snapshot().Run(context.Background(), metro, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseEstimate := base.Store.Estimate(metro, base.World.G.Metros[metro].Members, cfg.NegPolicy)
	issuedBefore := base.Engine.Issued()

	// 40 polls: past the entry checks, inside the bootstrap fan-out.
	ctx := newCountdownCtx(40)
	res, err := base.Snapshot().Run(ctx, metro, cfg)
	if err == nil {
		t.Fatalf("expected cancellation error, got result with %d measurements", res.Measurements)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}

	// Budget may not be overrun by speculation even under cancellation:
	// the window is capped at the budget before any trace launches.
	if got := base.Engine.Issued() - issuedBefore; got > cfg.MaxMeasurements {
		t.Fatalf("cancelled run issued %d traceroutes, budget is %d", got, cfg.MaxMeasurements)
	}

	// The snapshot isolated the cancelled run: the base store is unchanged.
	after := base.Store.Estimate(metro, base.World.G.Metros[metro].Members, cfg.NegPolicy)
	if !reflect.DeepEqual(baseEstimate, after) {
		t.Fatalf("cancelled run leaked observations into the base store")
	}

	// Shared state (engine caches) survived intact: a fresh snapshot still
	// reproduces the original run byte-for-byte.
	again, err := base.Snapshot().Run(context.Background(), metro, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before.Timings = PhaseTimings{}
	again.Timings = PhaseTimings{}
	if !reflect.DeepEqual(before, again) {
		t.Fatalf("run after cancellation differs from run before it")
	}
}

// TestMeasureStatsMerge pins the engine-side aggregation primitive.
func TestMeasureStatsMerge(t *testing.T) {
	a := MeasureStats{Workers: 2, Batches: 3, Launched: 10, Committed: 9, Discarded: 1, PrefetchedRoutes: 4, Wall: time.Second}
	b := MeasureStats{Workers: 8, Batches: 1, Launched: 5, Committed: 5, PrefetchedRoutes: 2, Wall: time.Second}
	a.Merge(b)
	want := MeasureStats{Workers: 8, Batches: 4, Launched: 15, Committed: 14, Discarded: 1, PrefetchedRoutes: 6, Wall: 2 * time.Second}
	if a != want {
		t.Fatalf("Merge = %+v, want %+v", a, want)
	}
}
