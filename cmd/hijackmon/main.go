// Command hijackmon demonstrates the paper's §6 application: predicting
// the blast radius of a prefix hijack. It generates a world, runs
// metAScritic on the victim's and attacker's metros, and compares the
// predicted set of hijacked ASes under (a) the public-BGP topology and
// (b) the topology extended with metAScritic's measured and inferred
// links — against the ground-truth catchment.
//
// With -watch it instead becomes a standing route-anomaly monitor over a
// streaming world: every tick one evolution batch churns the topology,
// the route cache absorbs it through scoped invalidation, and the
// monitors' public view is re-collected and diffed. View deltas that no
// ground-truth link event explains are flagged as anomalies — the
// re-routing shifts a real monitor would investigate as possible
// hijacks — within a single refresh interval of the churn.
//
// Usage:
//
//	hijackmon [-scale 0.2] [-seed 1] [-victim Sydney] [-attacker Tokyo] [-thr 0.5]
//	hijackmon -watch [-ticks 5] [-interval 2s] [-churn 8] [-dests 64]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"metascritic"
	"metascritic/internal/asgraph"
	"metascritic/internal/bgp"
	"metascritic/internal/cliflags"
	"metascritic/internal/engine"
	"metascritic/internal/forensics"
	"metascritic/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hijackmon:", err)
		os.Exit(1)
	}
}

func run() error {
	victimMetro := flag.String("victim", "Sydney", "metro of the legitimate announcement")
	attackerMetro := flag.String("attacker", "Tokyo", "metro of the hijacking announcement")
	thr := flag.Float64("thr", 0.5, "link threshold λ for inferred links")
	watchMode := flag.Bool("watch", false, "standing monitor: churn the world every tick and flag public-view anomalies")
	ticks := flag.Int("ticks", 5, "number of watch ticks (0 = run until interrupted)")
	interval := flag.Duration("interval", 2*time.Second, "delay between watch ticks")
	churn := flag.Int("churn", 8, "link events drawn per watch tick (downs + ups + depeerings)")
	dests := flag.Int("dests", 64, "destinations sampled for the watch public view")
	pf := cliflags.DefaultPipeline()
	pf.Scale = 0.2
	ef := cliflags.DefaultEngine()
	ef.Budget = 6000
	var prof cliflags.Profile
	pf.Register(flag.CommandLine)
	ef.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *watchMode {
		_, err := watch(ctx, os.Stdout, pf, watchOptions{
			Ticks:       *ticks,
			Interval:    *interval,
			Churn:       *churn,
			Dests:       *dests,
			CacheBudget: int64(ef.RouteCacheMB) << 20,
		})
		return err
	}

	w, pipe, _ := pf.Build()
	ef.ApplyPipeline(pipe)
	g := w.G
	vm := g.MetroOfName(*victimMetro)
	am := g.MetroOfName(*attackerMetro)
	if vm == nil || am == nil {
		return fmt.Errorf("unknown metro name (%q / %q)", *victimMetro, *attackerMetro)
	}

	// Run metAScritic on both metros concurrently through the engine.
	cfg := metascritic.DefaultConfig()
	ef.Apply(&cfg, pf.Seed)
	fmt.Printf("running metAScritic on %s and %s...\n", vm.Name, am.Name)
	metros := []int{vm.Index, am.Index}
	if vm.Index == am.Index {
		metros = metros[:1]
	}
	mr, err := engine.New(pipe).RunAll(ctx, engine.Config{
		Base:        cfg,
		Metros:      metros,
		Workers:     ef.Workers,
		SharePriors: ef.SharePriors,
	})
	if err != nil {
		return fmt.Errorf("run metros %s and %s: %w", vm.Name, am.Name, err)
	}
	resV, resA := mr.Result(vm.Index), mr.Result(am.Index)

	threshold := *thr
	if threshold <= 0 {
		threshold = resV.Threshold
	}
	rep, err := forensics.Analyze(w, vm, am, []*metascritic.Result{resV, resA}, threshold)
	if err != nil {
		return err
	}

	fmt.Printf("\nvictim seeds %v at %s, attacker seeds %v at %s\n", rep.VictimASNs, rep.VictimMetro, rep.AttackerASNs, rep.AttackerMetro)
	fmt.Printf("ground truth: %d of %d ASes receive the hijacked route\n\n", rep.ActualHijacked, rep.TotalASes)

	fmt.Printf("%-28s accuracy %.3f  predicted-hijacked %d\n", "public BGP topology:", rep.Public.Accuracy, rep.Public.PredictedHijacked)
	fmt.Printf("%-28s accuracy %.3f  predicted-hijacked %d\n", "+ metAScritic links:", rep.Extended.Accuracy, rep.Extended.PredictedHijacked)
	fmt.Printf("\naccuracy delta from metAScritic links: %+.1f points (%d links added)\n",
		100*(rep.Extended.Accuracy-rep.Public.Accuracy), rep.ExtraLinks)
	fmt.Println("(single configuration; the Fig. 7 experiment aggregates 90 of them)")
	return nil
}

// --- watch mode ---

// watchOptions sizes the standing monitor.
type watchOptions struct {
	// Ticks bounds the loop; 0 runs until the context is canceled.
	Ticks int
	// Interval is the pause between ticks (0 for back-to-back, as tests
	// use).
	Interval time.Duration
	// Churn is the number of link events drawn per tick, split across
	// downs, ups and depeerings.
	Churn int
	// Dests is the number of destinations the public view samples.
	Dests int
	// CacheBudget bounds the monitor's route cache in bytes (0 =
	// unbounded) — a standing monitor over a large world otherwise
	// accumulates one cached view per destination it ever sampled.
	CacheBudget int64
}

// tickReport is one tick's outcome: the view delta split into deltas a
// ground-truth link event explains and unexplained re-routes (the
// flagged anomalies).
type tickReport struct {
	Tick                  int
	Epoch                 uint32
	Events, NewASes       int
	Invalidated, Retained int
	// Withdrawn/Appeared count links that left/entered the public view;
	// ExplainedDown/ExplainedUp are the subsets matching a batch event on
	// that exact pair.
	Withdrawn, Appeared        int
	ExplainedDown, ExplainedUp int
	// Anomalies are the unexplained deltas, formatted "ASx—ASy lost|new",
	// sorted (capped at 5 in the printed output, complete here).
	Anomalies []string
}

// watch runs the standing monitor: per tick it snapshots the monitors'
// public view, draws one evolution batch through the full streaming
// pipeline (topology mirror, scoped route-cache invalidation, address
// plan, evidence epoch), re-collects the view and diffs. The whole loop
// is a pure function of the pipeline flags, so equal seeds give
// byte-identical reports at any tick pacing.
func watch(ctx context.Context, out io.Writer, pf cliflags.Pipeline, opts watchOptions) ([]tickReport, error) {
	w, pipe, _ := pf.Build()
	if opts.CacheBudget > 0 {
		pipe.SetRouteCacheBudget(opts.CacheBudget)
	}
	g := w.G
	rng := rand.New(rand.NewSource(pf.Seed))

	// Monitors are the worlds' probe-hosting ASes — the RIPE-Atlas-like
	// public collectors whose best paths form the "public view" of §1.
	seen := map[int]bool{}
	var monitors []int
	for _, pr := range w.Probes {
		if !seen[pr.AS] {
			seen[pr.AS] = true
			monitors = append(monitors, pr.AS)
		}
	}
	sort.Ints(monitors)

	// Deterministic destination sample over the responsive ASes.
	var pool []int
	for i, resp := range w.Responsive {
		if resp {
			pool = append(pool, i)
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if opts.Dests > 0 && opts.Dests < len(pool) {
		pool = pool[:opts.Dests]
	}
	sort.Ints(pool)

	spec := netsim.EvolveSpec{
		LinkDowns:  (opts.Churn + 2) / 3,
		LinkUps:    (opts.Churn + 2) / 3,
		Depeerings: opts.Churn / 3,
	}
	fmt.Fprintf(out, "watching %d monitors over %d destinations (%d ASes, seed %d, ~%d link events/tick)\n",
		len(monitors), len(pool), g.N(), pf.Seed, spec.LinkDowns+spec.LinkUps+spec.Depeerings)

	before := bgp.VisibleLinks(pipe.Engine.Cache, monitors, pool)
	var reports []tickReport
	for tick := 1; opts.Ticks <= 0 || tick <= opts.Ticks; tick++ {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		batch, st, err := pipe.Evolve(rng, spec)
		if err != nil {
			return reports, err
		}
		downs := map[asgraph.Pair]bool{}
		ups := map[asgraph.Pair]bool{}
		for _, ev := range batch.Events {
			switch ev.Kind {
			case netsim.LinkDown, netsim.Depeer:
				downs[asgraph.MakePair(ev.A, ev.B)] = true
			case netsim.LinkUp:
				ups[asgraph.MakePair(ev.A, ev.B)] = true
			}
		}
		after := bgp.VisibleLinks(pipe.Engine.Cache, monitors, pool)

		rep := tickReport{
			Tick: tick, Epoch: st.Epoch,
			Events: st.Events, NewASes: st.NewASes,
			Invalidated: st.Invalidated, Retained: st.Retained,
		}
		for l := range before {
			if !after[l] {
				rep.Withdrawn++
				if downs[l] {
					rep.ExplainedDown++
				} else {
					rep.Anomalies = append(rep.Anomalies,
						fmt.Sprintf("AS%d—AS%d lost", g.ASes[l.A].ASN, g.ASes[l.B].ASN))
				}
			}
		}
		for l := range after {
			if !before[l] {
				rep.Appeared++
				if ups[l] {
					rep.ExplainedUp++
				} else {
					rep.Anomalies = append(rep.Anomalies,
						fmt.Sprintf("AS%d—AS%d new", g.ASes[l.A].ASN, g.ASes[l.B].ASN))
				}
			}
		}
		sort.Strings(rep.Anomalies)
		reports = append(reports, rep)

		fmt.Fprintf(out, "tick %d (epoch %d): %d events, cache -%d/+%d retained, view -%d/+%d links (%d/%d explained), %d anomalous re-routes\n",
			rep.Tick, rep.Epoch, rep.Events, rep.Invalidated, rep.Retained,
			rep.Withdrawn, rep.Appeared, rep.ExplainedDown, rep.ExplainedUp, len(rep.Anomalies))
		for i, a := range rep.Anomalies {
			if i == 5 {
				fmt.Fprintf(out, "  … %d more\n", len(rep.Anomalies)-5)
				break
			}
			fmt.Fprintf(out, "  ANOMALY %s\n", a)
		}

		before = after
		if opts.Interval > 0 && (opts.Ticks <= 0 || tick < opts.Ticks) {
			select {
			case <-ctx.Done():
				return reports, ctx.Err()
			case <-time.After(opts.Interval):
			}
		}
	}
	return reports, nil
}
