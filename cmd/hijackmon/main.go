// Command hijackmon demonstrates the paper's §6 application: predicting
// the blast radius of a prefix hijack. It generates a world, runs
// metAScritic on the victim's and attacker's metros, and compares the
// predicted set of hijacked ASes under (a) the public-BGP topology and
// (b) the topology extended with metAScritic's measured and inferred
// links — against the ground-truth catchment.
//
// Usage:
//
//	hijackmon [-scale 0.2] [-seed 1] [-victim Sydney] [-attacker Tokyo] [-thr 0.5]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"metascritic"
	"metascritic/internal/cliflags"
	"metascritic/internal/engine"
	"metascritic/internal/forensics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hijackmon:", err)
		os.Exit(1)
	}
}

func run() error {
	victimMetro := flag.String("victim", "Sydney", "metro of the legitimate announcement")
	attackerMetro := flag.String("attacker", "Tokyo", "metro of the hijacking announcement")
	thr := flag.Float64("thr", 0.5, "link threshold λ for inferred links")
	pf := cliflags.DefaultPipeline()
	pf.Scale = 0.2
	ef := cliflags.DefaultEngine()
	ef.Budget = 6000
	var prof cliflags.Profile
	pf.Register(flag.CommandLine)
	ef.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w, pipe, _ := pf.Build()
	g := w.G
	vm := g.MetroOfName(*victimMetro)
	am := g.MetroOfName(*attackerMetro)
	if vm == nil || am == nil {
		return fmt.Errorf("unknown metro name (%q / %q)", *victimMetro, *attackerMetro)
	}

	// Run metAScritic on both metros concurrently through the engine.
	cfg := metascritic.DefaultConfig()
	ef.Apply(&cfg, pf.Seed)
	fmt.Printf("running metAScritic on %s and %s...\n", vm.Name, am.Name)
	metros := []int{vm.Index, am.Index}
	if vm.Index == am.Index {
		metros = metros[:1]
	}
	mr, err := engine.New(pipe).RunAll(ctx, engine.Config{
		Base:        cfg,
		Metros:      metros,
		Workers:     ef.Workers,
		SharePriors: ef.SharePriors,
	})
	if err != nil {
		return fmt.Errorf("run metros %s and %s: %w", vm.Name, am.Name, err)
	}
	resV, resA := mr.Result(vm.Index), mr.Result(am.Index)

	threshold := *thr
	if threshold <= 0 {
		threshold = resV.Threshold
	}
	rep, err := forensics.Analyze(w, vm, am, []*metascritic.Result{resV, resA}, threshold)
	if err != nil {
		return err
	}

	fmt.Printf("\nvictim seeds %v at %s, attacker seeds %v at %s\n", rep.VictimASNs, rep.VictimMetro, rep.AttackerASNs, rep.AttackerMetro)
	fmt.Printf("ground truth: %d of %d ASes receive the hijacked route\n\n", rep.ActualHijacked, rep.TotalASes)

	fmt.Printf("%-28s accuracy %.3f  predicted-hijacked %d\n", "public BGP topology:", rep.Public.Accuracy, rep.Public.PredictedHijacked)
	fmt.Printf("%-28s accuracy %.3f  predicted-hijacked %d\n", "+ metAScritic links:", rep.Extended.Accuracy, rep.Extended.PredictedHijacked)
	fmt.Printf("\naccuracy delta from metAScritic links: %+.1f points (%d links added)\n",
		100*(rep.Extended.Accuracy-rep.Public.Accuracy), rep.ExtraLinks)
	fmt.Println("(single configuration; the Fig. 7 experiment aggregates 90 of them)")
	return nil
}
