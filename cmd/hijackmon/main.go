// Command hijackmon demonstrates the paper's §6 application: predicting
// the blast radius of a prefix hijack. It generates a world, runs
// metAScritic on the victim's and attacker's metros, and compares the
// predicted set of hijacked ASes under (a) the public-BGP topology and
// (b) the topology extended with metAScritic's measured and inferred
// links — against the ground-truth catchment.
//
// Usage:
//
//	hijackmon [-scale 0.2] [-seed 1] [-victim Sydney] [-attacker Tokyo] [-thr 0.5]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"metascritic"
	"metascritic/internal/asgraph"
	"metascritic/internal/bgp"
	"metascritic/internal/engine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hijackmon:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Float64("scale", 0.2, "world scale")
	seed := flag.Int64("seed", 1, "world seed")
	victimMetro := flag.String("victim", "Sydney", "metro of the legitimate announcement")
	attackerMetro := flag.String("attacker", "Tokyo", "metro of the hijacking announcement")
	thr := flag.Float64("thr", 0.5, "link threshold λ for inferred links")
	budget := flag.Int("budget", 6000, "traceroute budget per metro")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := metascritic.GenerateWorld(metascritic.WorldConfig{Seed: *seed, Metros: metascritic.DefaultMetros(*scale)})
	g := w.G
	vm := g.MetroOfName(*victimMetro)
	am := g.MetroOfName(*attackerMetro)
	if vm == nil || am == nil {
		return fmt.Errorf("unknown metro name (%q / %q)", *victimMetro, *attackerMetro)
	}

	// Run metAScritic on both metros concurrently through the engine.
	pipe := metascritic.NewPipeline(w)
	rng := rand.New(rand.NewSource(*seed))
	pipe.SeedPublicMeasurements(10, rng)
	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = *budget
	cfg.Seed = *seed
	fmt.Printf("running metAScritic on %s and %s...\n", vm.Name, am.Name)
	metros := []int{vm.Index, am.Index}
	if vm.Index == am.Index {
		metros = metros[:1]
	}
	mr, err := engine.New(pipe).RunAll(ctx, engine.Config{
		Base:   cfg,
		Metros: metros,
	})
	if err != nil {
		return fmt.Errorf("run metros %s and %s: %w", vm.Name, am.Name, err)
	}
	resV, resA := mr.Result(vm.Index), mr.Result(am.Index)

	// Announcement seeds: a couple of transit providers at each metro.
	seeds := func(m *asgraph.Metro) []int {
		var out []int
		for _, ai := range m.Members {
			c := g.ASes[ai].Class
			if (c == asgraph.Transit || c == asgraph.LargeISP) && len(out) < 2 {
				out = append(out, ai)
			}
		}
		return out
	}
	vict, att := seeds(vm), seeds(am)
	if len(vict) == 0 || len(att) == 0 {
		return fmt.Errorf("no transit seeds at metro %s or %s", vm.Name, am.Name)
	}

	// Ground truth.
	truth := bgp.FromGraph(g)
	actual := truth.SimulateHijack(vict, att)

	// Prediction topologies: known c2p relationships + peering link sets.
	buildTopo := func(extra []asgraph.Pair) *bgp.Topology {
		t := bgp.NewTopology(g.N())
		for c := range g.Providers {
			for _, p := range g.Providers[c] {
				t.AddC2P(c, p)
			}
		}
		added := map[asgraph.Pair]bool{}
		for _, pr := range extra {
			if added[pr] || g.HasProvider(pr.A, pr.B) || g.HasProvider(pr.B, pr.A) {
				continue
			}
			added[pr] = true
			t.AddP2P(pr.A, pr.B)
		}
		return t
	}
	// Public view: Tier1 mesh only (the minimum any collector sees).
	var pub []asgraph.Pair
	for a := range g.Peers {
		if g.ASes[a].Class != asgraph.Tier1 {
			continue
		}
		for _, b := range g.Peers[a] {
			if a < b && g.ASes[b].Class == asgraph.Tier1 {
				pub = append(pub, asgraph.MakePair(a, b))
			}
		}
	}
	ext := append([]asgraph.Pair(nil), pub...)
	for _, res := range []*metascritic.Result{resV, resA} {
		prog := metascritic.NewProgressiveTopology(res)
		for _, l := range prog.AtConfidence(*thr) {
			ext = append(ext, l.Pair)
		}
	}

	score := func(t *bgp.Topology) (acc float64, hijacked int) {
		pred := t.SimulateHijack(vict, att)
		good := 0
		for as := range actual {
			actHij := actual[as]&bgp.FlagAttacker != 0
			predHij := pred[as]&bgp.FlagAttacker != 0
			predLegit := pred[as]&bgp.FlagVictim != 0
			if predHij == actHij || (predHij && predLegit) {
				good++
			}
			if predHij {
				hijacked++
			}
		}
		return float64(good) / float64(len(actual)), hijacked
	}

	actualHijacked := 0
	for _, f := range actual {
		if f&bgp.FlagAttacker != 0 {
			actualHijacked++
		}
	}
	sort.Ints(vict)
	sort.Ints(att)
	fmt.Printf("\nvictim seeds %v at %s, attacker seeds %v at %s\n", asns(g, vict), vm.Name, asns(g, att), am.Name)
	fmt.Printf("ground truth: %d of %d ASes receive the hijacked route\n\n", actualHijacked, g.N())

	accPub, hijPub := score(buildTopo(pub))
	accExt, hijExt := score(buildTopo(ext))
	fmt.Printf("%-28s accuracy %.3f  predicted-hijacked %d\n", "public BGP topology:", accPub, hijPub)
	fmt.Printf("%-28s accuracy %.3f  predicted-hijacked %d\n", "+ metAScritic links:", accExt, hijExt)
	fmt.Printf("\naccuracy delta from metAScritic links: %+.1f points\n", 100*(accExt-accPub))
	fmt.Println("(single configuration; the Fig. 7 experiment aggregates 90 of them)")
	return nil
}

func asns(g *asgraph.Graph, idx []int) []int {
	out := make([]int, len(idx))
	for i, x := range idx {
		out[i] = g.ASes[x].ASN
	}
	return out
}
