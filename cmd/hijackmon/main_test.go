package main

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"metascritic/internal/cliflags"
)

// TestWatchDeterministic pins the watch loop's contract: equal seeds
// give byte-identical tick reports (and output), and every tick advances
// the epoch while classifying the full view delta.
func TestWatchDeterministic(t *testing.T) {
	pf := cliflags.Pipeline{World: cliflags.World{Scale: 0.1, Seed: 11}, Public: 4}
	opts := watchOptions{Ticks: 3, Interval: 0, Churn: 9, Dests: 48}

	var out1, out2 bytes.Buffer
	reps1, err := watch(context.Background(), &out1, pf, opts)
	if err != nil {
		t.Fatal(err)
	}
	reps2, err := watch(context.Background(), &out2, pf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reps1, reps2) {
		t.Fatalf("watch reports diverged across identical runs:\n%+v\n%+v", reps1, reps2)
	}
	if out1.String() != out2.String() {
		t.Fatalf("watch output diverged:\n%s\n%s", out1.String(), out2.String())
	}

	if len(reps1) != 3 {
		t.Fatalf("expected 3 tick reports, got %d", len(reps1))
	}
	totalEvents, totalDelta := 0, 0
	for i, rep := range reps1 {
		if rep.Tick != i+1 || rep.Epoch != uint32(i+1) {
			t.Fatalf("tick %d has wrong tick/epoch: %+v", i+1, rep)
		}
		if rep.ExplainedDown > rep.Withdrawn || rep.ExplainedUp > rep.Appeared {
			t.Fatalf("explained exceeds the delta: %+v", rep)
		}
		if got := rep.Withdrawn + rep.Appeared - rep.ExplainedDown - rep.ExplainedUp; got != len(rep.Anomalies) {
			t.Fatalf("anomalies do not account for the unexplained delta: %+v", rep)
		}
		totalEvents += rep.Events
		totalDelta += rep.Withdrawn + rep.Appeared
	}
	if totalEvents == 0 {
		t.Fatal("three churn ticks produced no events")
	}
	t.Logf("3 ticks: %d events, %d view deltas, %d anomalies in tick 1",
		totalEvents, totalDelta, len(reps1[0].Anomalies))
}

// TestWatchHonorsCancellation: a canceled context stops the loop between
// ticks and returns the reports collected so far.
func TestWatchCanceled(t *testing.T) {
	pf := cliflags.Pipeline{World: cliflags.World{Scale: 0.1, Seed: 11}, Public: 4}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	reps, err := watch(ctx, &out, pf, watchOptions{Ticks: 4, Churn: 6, Dests: 16})
	if err == nil {
		t.Fatal("canceled watch returned no error")
	}
	if len(reps) != 0 {
		t.Fatalf("canceled-before-start watch produced %d reports", len(reps))
	}
}
