// Command worldgen generates a synthetic Internet and dumps it as JSON:
// ASes with their public features, metros, IXPs, and — optionally — the
// ground-truth link set (for debugging and for use as a fixture by other
// tools).
//
// The dump is streamed per record (one json.Encoder write per AS / metro
// / link) so a 100k-AS world with hundreds of thousands of truth links
// never materializes in memory. -report prints the structural realism
// report (degree distribution + power-law fit, clustering, k-cores,
// assortativity) to stderr.
//
// Usage:
//
//	worldgen [-scale 0.2 | -ases 100000] [-seed 1] [-truth] [-report] [-o world.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"metascritic/internal/asgraph"
	"metascritic/internal/cliflags"
	"metascritic/internal/graphmetrics"
	"metascritic/internal/netsim"
)

type jsonAS struct {
	ASN      int      `json:"asn"`
	Class    string   `json:"class"`
	Policy   string   `json:"policy"`
	Traffic  string   `json:"traffic"`
	Eyeballs int      `json:"eyeballs"`
	Country  string   `json:"country"`
	Metros   []string `json:"metros"`
	IXPs     []string `json:"ixps,omitempty"`
	Probe    bool     `json:"hosts_probe"`
}

type jsonMetro struct {
	Name    string   `json:"name"`
	Country string   `json:"country"`
	Members int      `json:"members"`
	IXPs    []string `json:"ixps,omitempty"`
}

type jsonLink struct {
	ASNA   int      `json:"asn_a"`
	ASNB   int      `json:"asn_b"`
	Rel    string   `json:"relationship"`
	Metros []string `json:"metros"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}
}

func run() error {
	truth := flag.Bool("truth", false, "include ground-truth links (large)")
	report := flag.Bool("report", false, "print the graph-realism report to stderr")
	out := flag.String("o", "-", "output file ('-' for stdout)")
	wf := cliflags.World{Scale: 0.2, Seed: 1}
	var prof cliflags.Profile
	wf.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	w := wf.Generate()
	g := w.G

	if *report {
		fmt.Fprint(os.Stderr, graphmetrics.FromGraph(g).String())
	}

	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriterSize(dst, 1<<20)
	if err := stream(bw, w, wf.Seed, *truth); err != nil {
		return err
	}
	return bw.Flush()
}

// stream writes the world as one JSON object, emitting each array element
// with its own encoder write so no per-world slice of records is ever
// built. The output is equivalent to marshaling a single document with
// fields seed, ases, metros and (optionally) truth_links.
func stream(bw *bufio.Writer, w *netsim.World, seed int64, truth bool) error {
	g := w.G
	metroName := func(m int) string { return g.Metros[m].Name }
	enc := json.NewEncoder(bw)

	writeSep := func(first bool) {
		if !first {
			bw.WriteString(",")
		}
	}

	fmt.Fprintf(bw, "{\"seed\":%d,\"ases\":[", seed)
	for i := range g.ASes {
		a := &g.ASes[i]
		ja := jsonAS{
			ASN:      a.ASN,
			Class:    a.Class.String(),
			Policy:   a.Policy.String(),
			Traffic:  a.Traffic.String(),
			Eyeballs: a.Eyeballs,
			Country:  g.Countries[a.Country].Code,
			Probe:    w.HasProbe(i),
		}
		for _, m := range a.Metros {
			ja.Metros = append(ja.Metros, metroName(m))
		}
		for _, ix := range a.IXPs {
			ja.IXPs = append(ja.IXPs, g.IXPs[ix].Name)
		}
		writeSep(i == 0)
		if err := enc.Encode(ja); err != nil {
			return fmt.Errorf("encode AS %d: %w", a.ASN, err)
		}
	}
	bw.WriteString("],\"metros\":[")
	for mi, m := range g.Metros {
		jm := jsonMetro{Name: m.Name, Country: g.Countries[m.Country].Code, Members: len(m.Members)}
		for _, ix := range m.IXPs {
			jm.IXPs = append(jm.IXPs, g.IXPs[ix].Name)
		}
		writeSep(mi == 0)
		if err := enc.Encode(jm); err != nil {
			return fmt.Errorf("encode metro %s: %w", m.Name, err)
		}
	}
	bw.WriteString("]")
	if truth {
		// Sort the link pairs so the dump is deterministic (map order is
		// not), then stream each link straight from the map entry.
		pairs := make([]netsim.Pair, 0, len(w.LinkMetros))
		for pr := range w.LinkMetros {
			pairs = append(pairs, pr)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].A != pairs[j].A {
				return pairs[i].A < pairs[j].A
			}
			return pairs[i].B < pairs[j].B
		})
		bw.WriteString(",\"truth_links\":[")
		jl := jsonLink{}
		for i, pr := range pairs {
			rel := "p2p"
			if r, _ := w.RelOf(pr.A, pr.B); r == asgraph.C2P {
				rel = "c2p"
			}
			jl.ASNA = g.ASes[pr.A].ASN
			jl.ASNB = g.ASes[pr.B].ASN
			jl.Rel = rel
			jl.Metros = jl.Metros[:0]
			for _, m := range w.LinkMetros[pr] {
				jl.Metros = append(jl.Metros, metroName(m))
			}
			writeSep(i == 0)
			if err := enc.Encode(jl); err != nil {
				return fmt.Errorf("encode link %d-%d: %w", jl.ASNA, jl.ASNB, err)
			}
		}
		bw.WriteString("]")
	}
	bw.WriteString("}\n")
	return nil
}
