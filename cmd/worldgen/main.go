// Command worldgen generates a synthetic Internet and dumps it as JSON:
// ASes with their public features, metros, IXPs, and — optionally — the
// ground-truth link set (for debugging and for use as a fixture by other
// tools).
//
// Usage:
//
//	worldgen [-scale 0.2] [-seed 1] [-truth] [-o world.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"metascritic/internal/asgraph"
	"metascritic/internal/cliflags"
)

type jsonAS struct {
	ASN      int      `json:"asn"`
	Class    string   `json:"class"`
	Policy   string   `json:"policy"`
	Traffic  string   `json:"traffic"`
	Eyeballs int      `json:"eyeballs"`
	Country  string   `json:"country"`
	Metros   []string `json:"metros"`
	IXPs     []string `json:"ixps,omitempty"`
	Probe    bool     `json:"hosts_probe"`
}

type jsonMetro struct {
	Name    string   `json:"name"`
	Country string   `json:"country"`
	Members int      `json:"members"`
	IXPs    []string `json:"ixps,omitempty"`
}

type jsonLink struct {
	ASNA   int      `json:"asn_a"`
	ASNB   int      `json:"asn_b"`
	Rel    string   `json:"relationship"`
	Metros []string `json:"metros"`
}

type jsonWorld struct {
	Seed   int64       `json:"seed"`
	ASes   []jsonAS    `json:"ases"`
	Metros []jsonMetro `json:"metros"`
	Truth  []jsonLink  `json:"truth_links,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}
}

func run() error {
	truth := flag.Bool("truth", false, "include ground-truth links (large)")
	out := flag.String("o", "-", "output file ('-' for stdout)")
	wf := cliflags.World{Scale: 0.2, Seed: 1}
	var prof cliflags.Profile
	wf.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	w := wf.Generate()
	g := w.G

	metroName := func(m int) string { return g.Metros[m].Name }
	doc := jsonWorld{Seed: wf.Seed}
	for _, a := range g.ASes {
		ja := jsonAS{
			ASN:      a.ASN,
			Class:    a.Class.String(),
			Policy:   a.Policy.String(),
			Traffic:  a.Traffic.String(),
			Eyeballs: a.Eyeballs,
			Country:  g.Countries[a.Country].Code,
			Probe:    w.HasProbe(a.Index),
		}
		for _, m := range a.Metros {
			ja.Metros = append(ja.Metros, metroName(m))
		}
		for _, ix := range a.IXPs {
			ja.IXPs = append(ja.IXPs, g.IXPs[ix].Name)
		}
		doc.ASes = append(doc.ASes, ja)
	}
	for _, m := range g.Metros {
		jm := jsonMetro{Name: m.Name, Country: g.Countries[m.Country].Code, Members: len(m.Members)}
		for _, ix := range m.IXPs {
			jm.IXPs = append(jm.IXPs, g.IXPs[ix].Name)
		}
		doc.Metros = append(doc.Metros, jm)
	}
	if *truth {
		for pr, metros := range w.LinkMetros {
			rel := "p2p"
			if r, _ := w.RelOf(pr.A, pr.B); r == asgraph.C2P {
				rel = "c2p"
			}
			jl := jsonLink{ASNA: g.ASes[pr.A].ASN, ASNB: g.ASes[pr.B].ASN, Rel: rel}
			for _, m := range metros {
				jl.Metros = append(jl.Metros, metroName(m))
			}
			doc.Truth = append(doc.Truth, jl)
		}
	}

	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("encode world JSON: %w", err)
	}
	return nil
}
