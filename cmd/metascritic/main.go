// Command metascritic runs the full metAScritic pipeline on one metro (or,
// with -all, on every study metro concurrently) of a generated synthetic
// Internet and prints the measured and inferred topology with confidence
// scores. Ctrl-C cancels a run cleanly mid-batch.
//
// Usage:
//
//	metascritic [-metro Sydney] [-scale 0.25] [-seed 1] [-budget 20000] [-top 20]
//	metascritic -all [-workers 4] [-share-priors=false] [-scale 0.25]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"metascritic"
	"metascritic/internal/api/snapshot"
	"metascritic/internal/cliflags"
	"metascritic/internal/engine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metascritic:", err)
		os.Exit(1)
	}
}

func run() error {
	metroName := flag.String("metro", "Sydney", "metro to run (e.g. Amsterdam, NewYork, SaoPaulo, Singapore, Sydney, Tokyo)")
	all := flag.Bool("all", false, "run every study metro concurrently through the engine")
	top := flag.Int("top", 20, "number of top inferred links to print")
	jsonOut := flag.String("json", "", "write the inferred topology as JSON to this file ('-' for stdout)")
	savePath := flag.String("save", "", "write a serving snapshot (world + evidence + results) for metascriticd -load")
	pf := cliflags.DefaultPipeline()
	ef := cliflags.DefaultEngine()
	var prof cliflags.Profile
	pf.Register(flag.CommandLine)
	ef.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	worldCfg := pf.Config()
	w, p, n := pf.Build()
	ef.ApplyPipeline(p)
	fmt.Printf("world: %d ASes, %d metros, %d probes; %d public traceroutes seeded\n",
		w.G.N(), len(w.G.Metros), len(w.Probes), n)

	cfg := metascritic.DefaultConfig()
	ef.Apply(&cfg, pf.Seed)

	if *all {
		mr, err := runAll(ctx, w, p, cfg, ef.Workers, ef.SharePriors)
		if err != nil {
			return err
		}
		return save(*savePath, worldCfg, p, mr.Results)
	}

	metro := w.G.MetroOfName(*metroName)
	if metro == nil {
		var names []string
		for _, m := range w.G.Metros {
			names = append(names, fmt.Sprintf("  %s (%d ASes)", m.Name, len(m.Members)))
		}
		return fmt.Errorf("unknown metro %q; available:\n%s", *metroName, joinLines(names))
	}

	res, err := p.Run(ctx, metro.Index, cfg)
	if err != nil {
		return fmt.Errorf("run metro %s: %w", metro.Name, err)
	}
	printMetro(w, res)

	if *jsonOut != "" {
		if err := writeJSON(ctx, p, res, *jsonOut); err != nil {
			return err
		}
	}
	printTopLinks(w, res, *top)
	return save(*savePath, worldCfg, p, map[int]*metascritic.Result{res.Metro: res})
}

// save persists a serving snapshot for metascriticd -load (no-op
// without -save).
func save(path string, worldCfg metascritic.WorldConfig, p *metascritic.Pipeline, results map[int]*metascritic.Result) error {
	if path == "" {
		return nil
	}
	if err := snapshot.Save(path, snapshot.Capture(worldCfg, p, results)); err != nil {
		return fmt.Errorf("save snapshot: %w", err)
	}
	fmt.Printf("\nserving snapshot (%d metros) written to %s\n", len(results), path)
	return nil
}

// runAll drives the six study metros through the concurrent engine,
// narrating progress events as workers pick metros up and finish them.
func runAll(ctx context.Context, w *metascritic.World, p *metascritic.Pipeline, cfg metascritic.Config, workers int, sharePriors bool) (*engine.MultiResult, error) {
	eng := engine.New(p)
	events := make(chan engine.Event, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			switch ev.Kind {
			case engine.MetroStarted:
				suffix := ""
				if ev.UsedPriors {
					suffix = " (seeded with pooled priors)"
				}
				fmt.Printf("[worker %d] %s started%s\n", ev.Worker, ev.Name, suffix)
			case engine.MetroFinished:
				fmt.Printf("[worker %d] %s finished in %v: %d measurements (%d bootstrap)\n",
					ev.Worker, ev.Name, ev.Stats.Wall.Round(1e6), ev.Stats.Measurements, ev.Stats.BootstrapMeasurements)
			case engine.MetroFailed:
				fmt.Printf("[worker %d] %s failed: %v\n", ev.Worker, ev.Name, ev.Err)
			}
		}
	}()

	mr, err := eng.RunAll(ctx, engine.Config{
		Base:        cfg,
		Workers:     workers,
		SharePriors: sharePriors,
		Events:      events,
	})
	close(events)
	<-done
	if err != nil {
		return nil, fmt.Errorf("run all metros: %w", err)
	}

	fmt.Printf("\n%-12s %6s %6s %10s %8s %8s\n", "metro", "rank", "links", "measured", "boot", "λ")
	for _, m := range mr.Metros {
		res := mr.Results[m]
		fmt.Printf("%-12s %6d %6d %10d %8d %8.2f\n",
			w.G.Metros[m].Name, res.Rank, len(res.LinksAbove(res.Threshold)),
			res.Measurements, res.BootstrapMeasurements, res.Threshold)
	}
	s := mr.Stats
	fmt.Printf("\nbatch: %d metros on %d workers in %v (utilization %.0f%%)\n",
		len(mr.Metros), s.Workers, s.Wall.Round(1e6), 100*s.Utilization())
	fmt.Printf("measurements: %d total, %d bootstrap\n", s.Measurements, s.BootstrapMeasurements)
	fmt.Printf("phase wall-clock (summed): bootstrap %v, rank loop %v, completion %v, threshold %v\n",
		s.Phases.Bootstrap.Round(1e6), s.Phases.RankLoop.Round(1e6),
		s.Phases.Completion.Round(1e6), s.Phases.Threshold.Round(1e6))
	fmt.Printf("  of which estimate build/refresh: %v\n", s.Phases.Estimate.Round(1e6))
	rc := s.RouteCache
	fmt.Printf("route cache: %d destinations over %d shards (%.1f MiB), %d hits / %d computed, %v propagating\n",
		rc.Entries, rc.Shards, float64(rc.Bytes)/(1<<20), rc.Hits, rc.Computed, rc.PropTime.Round(1e6))
	return mr, nil
}

func printMetro(w *metascritic.World, res *metascritic.Result) {
	fmt.Printf("\nmetro %s: %d member ASes\n", w.G.Metros[res.Metro].Name, len(res.Members))
	fmt.Printf("estimated effective rank: %d\n", res.Rank)
	fmt.Printf("targeted traceroutes issued: %d (%d bootstrap)\n", res.Measurements, res.BootstrapMeasurements)
	fmt.Printf("observed entries in E_m: %d\n", res.Estimate.Mask.Count()/2)
	fmt.Printf("F-maximizing threshold λ: %.2f\n", res.Threshold)

	measured, inferred := 0, 0
	nm := len(res.Members)
	for i := 0; i < nm; i++ {
		for j := i + 1; j < nm; j++ {
			v, ok := res.Estimate.Value(res.Members[i], res.Members[j])
			if ok && v > 0 {
				measured++
				continue
			}
			if res.Ratings.At(i, j) >= res.Threshold {
				inferred++
			}
		}
	}
	fmt.Printf("measured links: %d   inferred links (λ=%.2f): %d\n", measured, res.Threshold, inferred)
}

func writeJSON(ctx context.Context, p *metascritic.Pipeline, res *metascritic.Result, path string) error {
	exp, err := p.ExportContext(ctx, res, res.Threshold)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	dst := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		defer f.Close()
		dst = f
	}
	if err := exp.WriteJSON(dst); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if path != "-" {
		fmt.Printf("\nJSON topology written to %s\n", path)
	}
	return nil
}

func printTopLinks(w *metascritic.World, res *metascritic.Result, top int) {
	type scored struct {
		a, b   int
		rating float64
	}
	var inferredLinks []scored
	nm := len(res.Members)
	for i := 0; i < nm; i++ {
		for j := i + 1; j < nm; j++ {
			if v, ok := res.Estimate.Value(res.Members[i], res.Members[j]); ok && v > 0 {
				continue
			}
			if r := res.Ratings.At(i, j); r >= res.Threshold {
				inferredLinks = append(inferredLinks, scored{res.Members[i], res.Members[j], r})
			}
		}
	}
	sort.Slice(inferredLinks, func(a, b int) bool { return inferredLinks[a].rating > inferredLinks[b].rating })
	fmt.Printf("\ntop inferred links:\n")
	for k, l := range inferredLinks {
		if k >= top {
			break
		}
		a, b := w.G.ASes[l.a], w.G.ASes[l.b]
		truth := " "
		if w.Truths[res.Metro].Has(l.a, l.b) {
			truth = "✓" // ground truth (available only because this is a simulation)
		}
		fmt.Printf("  %s AS%-6d (%-10v) — AS%-6d (%-10v)  rating %.3f\n",
			truth, a.ASN, a.Class, b.ASN, b.Class, l.rating)
	}
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}
