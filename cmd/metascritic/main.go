// Command metascritic runs the full metAScritic pipeline on one metro of a
// generated synthetic Internet and prints the measured and inferred
// topology with confidence scores.
//
// Usage:
//
//	metascritic [-metro Sydney] [-scale 0.25] [-seed 1] [-budget 20000] [-top 20]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"metascritic"
)

func main() {
	metroName := flag.String("metro", "Sydney", "metro to run (e.g. Amsterdam, NewYork, SaoPaulo, Singapore, Sydney, Tokyo)")
	scale := flag.Float64("scale", 0.25, "world scale (1.0 ≈ paper-like metro sizes)")
	seed := flag.Int64("seed", 1, "world and pipeline seed")
	budget := flag.Int("budget", 20000, "targeted traceroute budget")
	public := flag.Int("public", 10, "public seed traceroutes per probe")
	top := flag.Int("top", 20, "number of top inferred links to print")
	jsonOut := flag.String("json", "", "write the inferred topology as JSON to this file ('-' for stdout)")
	flag.Parse()

	w := metascritic.GenerateWorld(metascritic.WorldConfig{
		Seed:   *seed,
		Metros: metascritic.DefaultMetros(*scale),
	})
	metro := w.G.MetroOfName(*metroName)
	if metro == nil {
		fmt.Fprintf(os.Stderr, "unknown metro %q; available:\n", *metroName)
		for _, m := range w.G.Metros {
			fmt.Fprintf(os.Stderr, "  %s (%d ASes)\n", m.Name, len(m.Members))
		}
		os.Exit(1)
	}

	p := metascritic.NewPipeline(w)
	rng := rand.New(rand.NewSource(*seed))
	n := p.SeedPublicMeasurements(*public, rng)
	fmt.Printf("world: %d ASes, %d metros, %d probes; %d public traceroutes seeded\n",
		w.G.N(), len(w.G.Metros), len(w.Probes), n)

	cfg := metascritic.DefaultConfig()
	cfg.MaxMeasurements = *budget
	cfg.Seed = *seed
	res := p.RunMetro(metro.Index, cfg)

	fmt.Printf("\nmetro %s: %d member ASes\n", metro.Name, len(res.Members))
	fmt.Printf("estimated effective rank: %d\n", res.Rank)
	fmt.Printf("targeted traceroutes issued: %d\n", res.Measurements)
	fmt.Printf("observed entries in E_m: %d\n", res.Estimate.Mask.Count()/2)
	fmt.Printf("F-maximizing threshold λ: %.2f\n", res.Threshold)

	// Count measured vs inferred links at the chosen threshold.
	measured, inferred := 0, 0
	type scored struct {
		a, b   int
		rating float64
	}
	var inferredLinks []scored
	nm := len(res.Members)
	for i := 0; i < nm; i++ {
		for j := i + 1; j < nm; j++ {
			v, ok := res.Estimate.Value(res.Members[i], res.Members[j])
			if ok && v > 0 {
				measured++
				continue
			}
			if r := res.Ratings.At(i, j); r >= res.Threshold {
				inferred++
				inferredLinks = append(inferredLinks, scored{res.Members[i], res.Members[j], r})
			}
		}
	}
	fmt.Printf("measured links: %d   inferred links (λ=%.2f): %d\n", measured, res.Threshold, inferred)

	if *jsonOut != "" {
		exp := p.Export(res, res.Threshold)
		var dst *os.File
		if *jsonOut == "-" {
			dst = os.Stdout
		} else {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			dst = f
		}
		if err := exp.WriteJSON(dst); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut != "-" {
			fmt.Printf("\nJSON topology written to %s\n", *jsonOut)
		}
	}

	sort.Slice(inferredLinks, func(a, b int) bool { return inferredLinks[a].rating > inferredLinks[b].rating })
	fmt.Printf("\ntop inferred links:\n")
	for k, l := range inferredLinks {
		if k >= *top {
			break
		}
		a, b := w.G.ASes[l.a], w.G.ASes[l.b]
		truth := " "
		if w.Truths[metro.Index].Has(l.a, l.b) {
			truth = "✓" // ground truth (available only because this is a simulation)
		}
		fmt.Printf("  %s AS%-6d (%-10v) — AS%-6d (%-10v)  rating %.3f\n",
			truth, a.ASN, a.Class, b.ASN, b.Class, l.rating)
	}
}
