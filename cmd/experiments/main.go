// Command experiments regenerates every table and figure of the paper's
// evaluation against a synthetic Internet and prints them as text tables.
// With -workers > 1 the six study-metro runs — the dominant cost of a full
// sweep — are executed concurrently through the engine before the
// experiment drivers read them from the harness cache.
//
// Usage:
//
//	experiments [-scale 0.2] [-seed 1] [-budget 8000] [-only Fig7,Table3] [-workers 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"metascritic/experiments"
	"metascritic/internal/cliflags"
	"metascritic/internal/graphmetrics"
	"metascritic/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	mdOut := flag.String("md", "", "also write all tables as a markdown report to this file")
	workers := flag.Int("workers", 1, "run the study metros concurrently on this many workers before the sweep")
	wf := cliflags.World{Scale: 0.2, Seed: 1}
	budget := flag.Int("budget", 8000, "targeted traceroute budget per metro")
	var prof cliflags.Profile
	wf.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	flag.Parse()
	scale, seed := &wf.Scale, &wf.Seed

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToLower(id)] = true
		}
	}
	runAll := len(want) == 0
	should := func(id string) bool { return runAll || want[strings.ToLower(id)] }

	fmt.Printf("generating world (scale %.2f, seed %d)...\n", *scale, *seed)
	start := time.Now()
	h := experiments.NewHarness(experiments.Options{
		Scale: *scale, Seed: *seed, Budget: *budget,
	})
	fmt.Printf("world ready in %v: %d ASes, %d probes\n", time.Since(start).Round(time.Millisecond),
		h.W.G.N(), len(h.W.Probes))
	fmt.Printf("world realism report:\n%s\n", graphmetrics.FromGraph(h.W.G))

	if *workers > 1 {
		fmt.Printf("warming the metro cache on %d workers...\n", *workers)
		stats, err := h.RunPrimariesParallel(ctx, *workers)
		if err != nil {
			return fmt.Errorf("parallel metro runs: %w", err)
		}
		fmt.Printf("metros ready in %v (utilization %.0f%%, %d measurements)\n\n",
			stats.Wall.Round(time.Millisecond), 100*stats.Utilization(), stats.Measurements)
	}

	var md *os.File
	if *mdOut != "" {
		f, err := os.Create(*mdOut)
		if err != nil {
			return fmt.Errorf("create markdown report %s: %w", *mdOut, err)
		}
		defer f.Close()
		md = f
		fmt.Fprintf(md, "# metAScritic experiment report (scale %.2f, seed %d)\n\n", *scale, *seed)
	}

	var firstErr error
	show := func(id string, run func() *experiments.Table) {
		if !should(id) || firstErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			firstErr = fmt.Errorf("sweep cancelled: %w", err)
			return
		}
		t0 := time.Now()
		tbl := run()
		fmt.Println(tbl.String())
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(t0).Round(time.Millisecond))
		if md != nil {
			if err := report.Markdown(md, tbl); err != nil {
				firstErr = fmt.Errorf("markdown for %s: %w", id, err)
			}
		}
	}

	show("Fig1", func() *experiments.Table { _, t := experiments.Fig1(h); return t })
	show("Fig3", func() *experiments.Table { _, t := experiments.Fig3(h); return t })
	show("Fig4", func() *experiments.Table { _, t := experiments.Fig4(h); return t })
	show("Fig5", func() *experiments.Table { _, t := experiments.Fig5(h); return t })
	show("Fig6", func() *experiments.Table { _, t := experiments.Fig6(h); return t })
	show("Fig7", func() *experiments.Table { _, t := experiments.Fig7(h); return t })
	show("Fig8", func() *experiments.Table { _, t := experiments.Fig8(h); return t })
	show("Fig9", func() *experiments.Table { _, t := experiments.Fig9(h); return t })
	show("Fig9M", func() *experiments.Table { _, t := experiments.Fig9Measured(h); return t })
	show("Fig10", func() *experiments.Table { _, t := experiments.Fig10(h, 60, 5); return t })
	show("Fig11", func() *experiments.Table { _, t := experiments.Fig11(h); return t })
	show("Fig12", func() *experiments.Table { _, t := experiments.Fig12(h); return t })
	show("Fig13", func() *experiments.Table {
		_, force, t := experiments.Fig13And14(h)
		fmt.Println("Fig. 14 — force explanation of the top inferred link:")
		fmt.Println(force)
		return t
	})
	show("Fig15", func() *experiments.Table { _, t := experiments.Fig15(h); return t })
	show("Fig16", func() *experiments.Table { _, t := experiments.Fig16(h); return t })
	show("Table2", func() *experiments.Table { _, t := experiments.Table2(h); return t })
	show("Table3", func() *experiments.Table { _, t := experiments.Table3(h); return t })
	show("Table4", func() *experiments.Table { _, t := experiments.Table4(h); return t })
	show("Table5", func() *experiments.Table { _, t := experiments.Table5(h); return t })
	show("E3", func() *experiments.Table { _, t := experiments.E3(h); return t })
	show("E7", func() *experiments.Table { _, t := experiments.E7(h); return t })
	show("AblEpsilon", func() *experiments.Table { _, t := experiments.AblationEpsilon(h); return t })
	show("AblFeatures", func() *experiments.Table { _, t := experiments.AblationFeatureWeight(h); return t })
	show("AblTransfer", func() *experiments.Table { _, t := experiments.AblationTransferability(h); return t })
	show("AblPrior", func() *experiments.Table { _, t := experiments.AblationHierarchicalPrior(h); return t })

	if firstErr != nil {
		return firstErr
	}
	fmt.Printf("all experiments done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
