// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_*.json files that track the repo's performance
// trajectory across PRs (see `make bench` and DESIGN.md §Performance).
//
// Usage:
//
//	go test -bench ... -benchmem ./... | go run ./cmd/benchjson -out BENCH_PR2.json
//	go run ./cmd/benchjson -in after.txt -before before.txt -out BENCH_PR2.json
//	go run ./cmd/benchjson -in after.txt -before-json BENCH_PR6.json -out BENCH_PR7.json
//	go run ./cmd/benchjson -compare BENCH_PR6.json BENCH_PR7.json
//
// When -before is given (a prior run's text output), each benchmark entry
// carries both measurements plus the before/after speedup; -before-json
// instead takes a prior report and uses its "after" measurements as this
// run's baseline, so every recorded report diffs against its predecessor
// (`make bench` wires this automatically). -compare diffs two recorded
// reports and exits non-zero when an end-to-end benchmark (RunMetro /
// RunAll) regressed by more than -regress-threshold in wall-clock or
// -rss-threshold in recorded peak RSS — the `make bench-compare` gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"metascritic/internal/cliflags"
)

// Measurement is one benchmark result line. Beyond the standard
// -benchmem columns, two custom b.ReportMetric units emitted by the
// end-to-end benchmarks are recorded: "peak-rss-bytes" (process
// resident-set high-water mark, see internal/sysmem) and
// "cache-evictions" (route-cache entries evicted under the byte
// budget). Peak RSS participates in the -compare gate via
// -rss-threshold.
type Measurement struct {
	Runs           int     `json:"runs"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp    int64   `json:"allocs_per_op,omitempty"`
	PeakRSSBytes   int64   `json:"peak_rss_bytes,omitempty"`
	CacheEvictions int64   `json:"cache_evictions,omitempty"`
}

// Entry pairs the measurements of one benchmark across the two runs.
type Entry struct {
	Name    string       `json:"name"`
	Package string       `json:"package,omitempty"`
	Before  *Measurement `json:"before,omitempty"`
	After   *Measurement `json:"after,omitempty"`
	Speedup float64      `json:"speedup,omitempty"` // before.ns / after.ns
}

// Report is the top-level JSON document.
type Report struct {
	Scale      string  `json:"scale,omitempty"` // METASCRITIC_BENCH_SCALE the run used
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "bench text input (default stdin)")
	before := flag.String("before", "", "optional baseline bench text to embed as 'before'")
	beforeJSON := flag.String("before-json", "", "optional prior report whose 'after' measurements become this report's 'before'")
	out := flag.String("out", "", "output JSON path (default stdout)")
	scale := flag.String("scale", os.Getenv("METASCRITIC_BENCH_SCALE"), "scale label recorded in the report")
	compare := flag.Bool("compare", false, "compare two recorded reports (args: old.json new.json) and fail on end-to-end regression")
	threshold := flag.Float64("regress-threshold", 0.10, "relative ns/op increase that counts as a regression in -compare")
	rssThreshold := flag.Float64("rss-threshold", 0.15, "relative peak-RSS increase that counts as a regression in -compare (0 disables)")
	var prof cliflags.Profile
	prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two report paths, got %d", flag.NArg()))
		}
		if err := compareReports(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, *rssThreshold); err != nil {
			stopProf()
			fatal(err)
		}
		return
	}

	after, order, err := parseFile(*in)
	if err != nil {
		fatal(err)
	}
	var base map[string]*Measurement
	if *before != "" {
		base, _, err = parseFile(*before)
		if err != nil {
			fatal(err)
		}
	}
	if *beforeJSON != "" {
		if base != nil {
			fatal(fmt.Errorf("-before and -before-json are mutually exclusive"))
		}
		base, err = loadReportAfter(*beforeJSON)
		if err != nil {
			fatal(err)
		}
	}

	rep := Report{Scale: *scale}
	for _, name := range order {
		e := Entry{Name: shortName(name), Package: pkgOf(name), After: after[name]}
		if b, ok := base[name]; ok {
			e.Before = b
			if e.After != nil && e.After.NsPerOp > 0 {
				e.Speedup = round2(b.NsPerOp / e.After.NsPerOp)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parseFile reads `go test -bench` output, returning measurements keyed by
// "pkg\tname" plus the encounter order.
func parseFile(path string) (map[string]*Measurement, []string, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	res := map[string]*Measurement{}
	var order []string
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if p, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name N ns/op-value "ns/op" [bytes "B/op"] [allocs "allocs/op"]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := trimProcSuffix(fields[0])
		runs, err1 := strconv.Atoi(fields[1])
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		m := &Measurement{Runs: runs, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			// ParseFloat, not ParseInt: custom b.ReportMetric values are
			// printed by the testing package as floats.
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				m.BytesPerOp = int64(v)
			case "allocs/op":
				m.AllocsPerOp = int64(v)
			case "peak-rss-bytes":
				m.PeakRSSBytes = int64(v)
			case "cache-evictions":
				m.CacheEvictions = int64(v)
			}
		}
		key := pkg + "\t" + name
		if _, seen := res[key]; !seen {
			order = append(order, key)
		}
		res[key] = m
	}
	return res, order, sc.Err()
}

// trimProcSuffix drops the trailing -GOMAXPROCS from a benchmark name
// (BenchmarkFoo/bar-8 → BenchmarkFoo/bar), without touching sub-benchmark
// names that legitimately contain dashes before the final segment.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func shortName(key string) string {
	_, n, _ := strings.Cut(key, "\t")
	return n
}

func pkgOf(key string) string {
	p, _, _ := strings.Cut(key, "\t")
	return p
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// loadReport parses a previously recorded BENCH_*.json document.
func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// loadReportAfter extracts a prior report's "after" measurements keyed
// the same way parseFile keys text output, so a recorded report can
// serve as the next report's baseline.
func loadReportAfter(path string) (map[string]*Measurement, error) {
	rep, err := loadReport(path)
	if err != nil {
		return nil, err
	}
	base := make(map[string]*Measurement, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		if e.After != nil {
			base[e.Package+"\t"+e.Name] = e.After
		}
	}
	return base, nil
}

// endToEnd reports whether a benchmark measures a whole pipeline run
// (rather than a kernel micro-benchmark): those are the wall-clock
// numbers the bench-compare gate protects.
func endToEnd(name string) bool {
	return strings.HasPrefix(name, "BenchmarkRunMetro") || strings.HasPrefix(name, "BenchmarkRunAll")
}

// compareReports diffs two recorded reports and returns an error when
// any end-to-end benchmark's wall-clock regressed by more than
// threshold (relative ns/op increase), or its peak RSS grew by more
// than rssThreshold when both reports recorded one (the memory leg of
// the `make bench-compare` gate; rssThreshold 0 disables it).
// Micro-benchmarks are printed for context but never fail the gate —
// they are noisier and their cost is already visible inside the
// end-to-end numbers.
//
// When the newer report embeds its own 'before' measurements (recorded
// by re-running the baseline tree in the same bench session via
// BENCH_BASELINE), those take precedence over the older report's
// numbers: absolute ns/op is only comparable within one machine and
// session, and a report recorded on slower hardware would otherwise
// trip the gate without any code regression.
func compareReports(w io.Writer, oldPath, newPath string, threshold, rssThreshold float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	if oldRep.Scale != newRep.Scale {
		fmt.Fprintf(w, "warning: reports were recorded at different scales (%q vs %q); deltas are not comparable\n",
			oldRep.Scale, newRep.Scale)
	}
	oldBy := make(map[string]*Measurement, len(oldRep.Benchmarks))
	for _, e := range oldRep.Benchmarks {
		if e.After != nil {
			oldBy[e.Package+"\t"+e.Name] = e.After
		}
	}

	var regressions []string
	embedded := 0
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, e := range newRep.Benchmarks {
		if e.After == nil {
			continue
		}
		old, ok := oldBy[e.Package+"\t"+e.Name]
		if e.Before != nil && e.Before.NsPerOp > 0 {
			old, ok = e.Before, true
			embedded++
		}
		if !ok || old.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-60s %14s %14.0f %8s\n", e.Name, "-", e.After.NsPerOp, "new")
			continue
		}
		delta := e.After.NsPerOp/old.NsPerOp - 1
		marker := ""
		if endToEnd(e.Name) {
			marker = " [e2e]"
			if delta > threshold {
				marker = " [e2e REGRESSION]"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f → %.0f ns/op (%+.1f%%)", e.Name, old.NsPerOp, e.After.NsPerOp, 100*delta))
			}
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %+7.1f%%%s\n", e.Name, old.NsPerOp, e.After.NsPerOp, 100*delta, marker)
		if endToEnd(e.Name) && old.PeakRSSBytes > 0 && e.After.PeakRSSBytes > 0 {
			rssDelta := float64(e.After.PeakRSSBytes)/float64(old.PeakRSSBytes) - 1
			rssMarker := ""
			if rssThreshold > 0 && rssDelta > rssThreshold {
				rssMarker = " [e2e RSS REGRESSION]"
				regressions = append(regressions,
					fmt.Sprintf("%s: peak RSS %d → %d bytes (%+.1f%%)",
						e.Name, old.PeakRSSBytes, e.After.PeakRSSBytes, 100*rssDelta))
			}
			fmt.Fprintf(w, "%-60s %14d %14d %+7.1f%%%s\n",
				"  ↳ peak RSS (bytes)", old.PeakRSSBytes, e.After.PeakRSSBytes, 100*rssDelta, rssMarker)
		}
	}
	if embedded > 0 {
		fmt.Fprintf(w, "(%d benchmark(s) compared against %s's embedded same-session baseline)\n", embedded, newPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d end-to-end regression(s) beyond thresholds (ns/op %.0f%%, peak RSS %.0f%%) (%s → %s):\n  %s",
			len(regressions), 100*threshold, 100*rssThreshold, oldPath, newPath, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "no end-to-end regression above %.0f%% ns/op or %.0f%% peak RSS (%s → %s)\n",
		100*threshold, 100*rssThreshold, oldPath, newPath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
