// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_*.json files that track the repo's performance
// trajectory across PRs (see `make bench` and DESIGN.md §Performance).
//
// Usage:
//
//	go test -bench ... -benchmem ./... | go run ./cmd/benchjson -out BENCH_PR2.json
//	go run ./cmd/benchjson -in after.txt -before before.txt -out BENCH_PR2.json
//
// When -before is given (a prior run's text output), each benchmark entry
// carries both measurements plus the before/after speedup; otherwise only
// "after" is filled.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Measurement is one benchmark result line.
type Measurement struct {
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Entry pairs the measurements of one benchmark across the two runs.
type Entry struct {
	Name    string       `json:"name"`
	Package string       `json:"package,omitempty"`
	Before  *Measurement `json:"before,omitempty"`
	After   *Measurement `json:"after,omitempty"`
	Speedup float64      `json:"speedup,omitempty"` // before.ns / after.ns
}

// Report is the top-level JSON document.
type Report struct {
	Scale      string  `json:"scale,omitempty"` // METASCRITIC_BENCH_SCALE the run used
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "bench text input (default stdin)")
	before := flag.String("before", "", "optional baseline bench text to embed as 'before'")
	out := flag.String("out", "", "output JSON path (default stdout)")
	scale := flag.String("scale", os.Getenv("METASCRITIC_BENCH_SCALE"), "scale label recorded in the report")
	flag.Parse()

	after, order, err := parseFile(*in)
	if err != nil {
		fatal(err)
	}
	var base map[string]*Measurement
	if *before != "" {
		base, _, err = parseFile(*before)
		if err != nil {
			fatal(err)
		}
	}

	rep := Report{Scale: *scale}
	for _, name := range order {
		e := Entry{Name: shortName(name), Package: pkgOf(name), After: after[name]}
		if b, ok := base[name]; ok {
			e.Before = b
			if e.After != nil && e.After.NsPerOp > 0 {
				e.Speedup = round2(b.NsPerOp / e.After.NsPerOp)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parseFile reads `go test -bench` output, returning measurements keyed by
// "pkg\tname" plus the encounter order.
func parseFile(path string) (map[string]*Measurement, []string, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	res := map[string]*Measurement{}
	var order []string
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if p, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name N ns/op-value "ns/op" [bytes "B/op"] [allocs "allocs/op"]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := trimProcSuffix(fields[0])
		runs, err1 := strconv.Atoi(fields[1])
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		m := &Measurement{Runs: runs, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		key := pkg + "\t" + name
		if _, seen := res[key]; !seen {
			order = append(order, key)
		}
		res[key] = m
	}
	return res, order, sc.Err()
}

// trimProcSuffix drops the trailing -GOMAXPROCS from a benchmark name
// (BenchmarkFoo/bar-8 → BenchmarkFoo/bar), without touching sub-benchmark
// names that legitimately contain dashes before the final segment.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func shortName(key string) string {
	_, n, _ := strings.Cut(key, "\t")
	return n
}

func pkgOf(key string) string {
	p, _, _ := strings.Cut(key, "\t")
	return p
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
