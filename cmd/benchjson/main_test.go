package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, path string, rep Report) {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadReportAfterKeysLikeParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prev.json")
	writeReport(t, path, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro/workers=1", Package: "metascritic", After: &Measurement{NsPerOp: 100}},
		{Name: "BenchmarkComplete", Package: "metascritic/internal/als"}, // no After: skipped
	}})
	base, err := loadReportAfter(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 1 {
		t.Fatalf("got %d baseline entries, want 1", len(base))
	}
	m := base["metascritic\tBenchmarkRunMetro/workers=1"]
	if m == nil || m.NsPerOp != 100 {
		t.Fatalf("baseline not keyed pkg\\tname: %+v", base)
	}
}

func TestCompareReports(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, oldPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro/workers=1", Package: "metascritic", After: &Measurement{NsPerOp: 100}},
		{Name: "BenchmarkRunAll/metros=4/workers=4", Package: "metascritic/internal/engine", After: &Measurement{NsPerOp: 1000}},
		{Name: "BenchmarkComplete", Package: "metascritic/internal/als", After: &Measurement{NsPerOp: 50}},
	}})

	// Within threshold (+5% end-to-end) and a micro-benchmark regression:
	// the gate passes — only end-to-end wall-clock is protected.
	writeReport(t, newPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro/workers=1", Package: "metascritic", After: &Measurement{NsPerOp: 105}},
		{Name: "BenchmarkRunAll/metros=4/workers=4", Package: "metascritic/internal/engine", After: &Measurement{NsPerOp: 900}},
		{Name: "BenchmarkComplete", Package: "metascritic/internal/als", After: &Measurement{NsPerOp: 500}},
	}})
	var sb strings.Builder
	if err := compareReports(&sb, oldPath, newPath, 0.10); err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, sb.String())
	}

	// An end-to-end regression beyond the threshold fails, naming the
	// benchmark.
	writeReport(t, newPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro/workers=1", Package: "metascritic", After: &Measurement{NsPerOp: 120}},
	}})
	sb.Reset()
	err := compareReports(&sb, oldPath, newPath, 0.10)
	if err == nil {
		t.Fatalf("20%% end-to-end regression passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkRunMetro/workers=1") {
		t.Fatalf("regression error does not name the benchmark: %v", err)
	}

	// A benchmark absent from the old report is "new", never a
	// regression.
	writeReport(t, newPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunAll/metros=16/workers=4", Package: "metascritic/internal/engine", After: &Measurement{NsPerOp: 9999}},
	}})
	sb.Reset()
	if err := compareReports(&sb, oldPath, newPath, 0.10); err != nil {
		t.Fatalf("new benchmark treated as regression: %v", err)
	}
}

func TestEndToEnd(t *testing.T) {
	for name, want := range map[string]bool{
		"BenchmarkRunMetro/workers=1":         true,
		"BenchmarkRunAll/metros=16/workers=4": true,
		"BenchmarkComplete":                   false,
		"BenchmarkPropagate":                  false,
	} {
		if endToEnd(name) != want {
			t.Errorf("endToEnd(%q) = %v, want %v", name, !want, want)
		}
	}
}
