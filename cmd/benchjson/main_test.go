package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, path string, rep Report) {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadReportAfterKeysLikeParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prev.json")
	writeReport(t, path, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro/workers=1", Package: "metascritic", After: &Measurement{NsPerOp: 100}},
		{Name: "BenchmarkComplete", Package: "metascritic/internal/als"}, // no After: skipped
	}})
	base, err := loadReportAfter(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 1 {
		t.Fatalf("got %d baseline entries, want 1", len(base))
	}
	m := base["metascritic\tBenchmarkRunMetro/workers=1"]
	if m == nil || m.NsPerOp != 100 {
		t.Fatalf("baseline not keyed pkg\\tname: %+v", base)
	}
}

func TestCompareReports(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, oldPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro/workers=1", Package: "metascritic", After: &Measurement{NsPerOp: 100}},
		{Name: "BenchmarkRunAll/metros=4/workers=4", Package: "metascritic/internal/engine", After: &Measurement{NsPerOp: 1000}},
		{Name: "BenchmarkComplete", Package: "metascritic/internal/als", After: &Measurement{NsPerOp: 50}},
	}})

	// Within threshold (+5% end-to-end) and a micro-benchmark regression:
	// the gate passes — only end-to-end wall-clock is protected.
	writeReport(t, newPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro/workers=1", Package: "metascritic", After: &Measurement{NsPerOp: 105}},
		{Name: "BenchmarkRunAll/metros=4/workers=4", Package: "metascritic/internal/engine", After: &Measurement{NsPerOp: 900}},
		{Name: "BenchmarkComplete", Package: "metascritic/internal/als", After: &Measurement{NsPerOp: 500}},
	}})
	var sb strings.Builder
	if err := compareReports(&sb, oldPath, newPath, 0.10, 0.15); err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, sb.String())
	}

	// An end-to-end regression beyond the threshold fails, naming the
	// benchmark.
	writeReport(t, newPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro/workers=1", Package: "metascritic", After: &Measurement{NsPerOp: 120}},
	}})
	sb.Reset()
	err := compareReports(&sb, oldPath, newPath, 0.10, 0.15)
	if err == nil {
		t.Fatalf("20%% end-to-end regression passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkRunMetro/workers=1") {
		t.Fatalf("regression error does not name the benchmark: %v", err)
	}

	// A benchmark absent from the old report is "new", never a
	// regression.
	writeReport(t, newPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunAll/metros=16/workers=4", Package: "metascritic/internal/engine", After: &Measurement{NsPerOp: 9999}},
	}})
	sb.Reset()
	if err := compareReports(&sb, oldPath, newPath, 0.10, 0.15); err != nil {
		t.Fatalf("new benchmark treated as regression: %v", err)
	}
}

func TestParseFileCustomMetrics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	// Custom b.ReportMetric values are printed by the testing package as
	// floats (possibly in scientific notation), after the standard columns.
	text := "pkg: metascritic\n" +
		"BenchmarkRunMetro100k-1   1  123456789 ns/op  2.684e+09 peak-rss-bytes  1234 cache-evictions  42 B/op  7 allocs/op\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	res, order, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(order))
	}
	m := res["metascritic\tBenchmarkRunMetro100k"]
	if m == nil {
		t.Fatalf("missing measurement; got keys %v", order)
	}
	if m.PeakRSSBytes != 2_684_000_000 {
		t.Errorf("PeakRSSBytes = %d, want 2684000000", m.PeakRSSBytes)
	}
	if m.CacheEvictions != 1234 {
		t.Errorf("CacheEvictions = %d, want 1234", m.CacheEvictions)
	}
	if m.BytesPerOp != 42 || m.AllocsPerOp != 7 {
		t.Errorf("standard -benchmem columns mis-parsed: %+v", m)
	}
}

func TestCompareReportsRSSGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, oldPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro100k", Package: "metascritic",
			After: &Measurement{NsPerOp: 100, PeakRSSBytes: 1 << 30}},
	}})

	// Faster wall-clock but peak RSS up 50%: the memory leg of the gate
	// fails, naming the benchmark.
	writeReport(t, newPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro100k", Package: "metascritic",
			After: &Measurement{NsPerOp: 90, PeakRSSBytes: 3 << 29}},
	}})
	var sb strings.Builder
	err := compareReports(&sb, oldPath, newPath, 0.10, 0.15)
	if err == nil {
		t.Fatalf("50%% peak-RSS growth passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "peak RSS") {
		t.Fatalf("RSS regression error does not mention peak RSS: %v", err)
	}

	// rssThreshold 0 disables the memory leg.
	sb.Reset()
	if err := compareReports(&sb, oldPath, newPath, 0.10, 0); err != nil {
		t.Fatalf("rss-threshold 0 still gated on RSS: %v", err)
	}

	// Growth within the threshold passes.
	writeReport(t, newPath, Report{Benchmarks: []Entry{
		{Name: "BenchmarkRunMetro100k", Package: "metascritic",
			After: &Measurement{NsPerOp: 100, PeakRSSBytes: (1 << 30) + (1 << 26)}},
	}})
	sb.Reset()
	if err := compareReports(&sb, oldPath, newPath, 0.10, 0.15); err != nil {
		t.Fatalf("within-threshold RSS growth failed the gate: %v\n%s", err, sb.String())
	}
}

func TestEndToEnd(t *testing.T) {
	for name, want := range map[string]bool{
		"BenchmarkRunMetro/workers=1":         true,
		"BenchmarkRunAll/metros=16/workers=4": true,
		"BenchmarkComplete":                   false,
		"BenchmarkPropagate":                  false,
	} {
		if endToEnd(name) != want {
			t.Errorf("endToEnd(%q) = %v, want %v", name, !want, want)
		}
	}
}
