// Command metascriticd is the long-lived serving daemon: it boots a
// world (cold, or warm from a -load snapshot), serves the versioned
// HTTP/JSON API from internal/api, schedules asynchronous runs, absorbs
// streaming topology churn via POST /v1/ingest (epoched evolution plus
// incremental re-scoring), and shuts down gracefully on SIGINT/SIGTERM —
// draining active runs, letting in-flight requests finish, and
// optionally persisting the final serving state with -save.
//
// Usage:
//
//	metascriticd [-addr :8480] [-scale 0.25] [-seed 1] [-budget 20000]
//	metascriticd -load snap.bin [-save snap.bin]
//	metascriticd -config daemon.json
//
// Flags override -config, which overrides the built-in defaults.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"metascritic"
	"metascritic/internal/api"
	"metascritic/internal/api/snapshot"
	"metascritic/internal/cliflags"
)

// daemonConfig is every knob the daemon takes, loadable from -config
// JSON (strict: unknown keys are rejected) and overridable by flags.
type daemonConfig struct {
	cliflags.Pipeline
	cliflags.Engine
	cliflags.Profile
	// Addr is the listen address.
	Addr string `json:"addr"`
	// Pprof serves net/http/pprof under /debug/pprof/ on Addr, so a
	// long-lived daemon can be profiled in place without a restart.
	Pprof bool `json:"pprof"`
	// MaxRunBudget caps the budget a POST /v1/runs may request (0 = no cap).
	MaxRunBudget int `json:"max_run_budget"`
	// RateLimit is requests/second/client; 0 disables limiting.
	RateLimit float64 `json:"rate_limit"`
	// RateBurst is the per-client burst size.
	RateBurst float64 `json:"rate_burst"`
	// DrainSeconds bounds the shutdown drain of active runs and requests.
	DrainSeconds int `json:"drain_seconds"`
}

func defaults() daemonConfig {
	return daemonConfig{
		Pipeline:     cliflags.DefaultPipeline(),
		Engine:       cliflags.DefaultEngine(),
		Addr:         ":8480",
		Pprof:        true,
		MaxRunBudget: 200000,
		RateBurst:    20,
		DrainSeconds: 30,
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metascriticd:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := defaults()
	// -config must apply before flag registration so that explicitly
	// passed flags win over the file: pre-scan the arguments for it.
	if path := configPath(os.Args[1:]); path != "" {
		if err := cliflags.LoadJSON(path, &cfg); err != nil {
			return err
		}
	}
	flag.String("config", "", "JSON config file (flags override it)")
	loadPath := flag.String("load", "", "boot warm from this snapshot file")
	savePath := flag.String("save", "", "persist the serving state to this snapshot file on shutdown")
	flag.StringVar(&cfg.Addr, "addr", cfg.Addr, "listen address")
	flag.IntVar(&cfg.MaxRunBudget, "max-run-budget", cfg.MaxRunBudget, "largest budget a submitted run may request (0 = unlimited)")
	flag.Float64Var(&cfg.RateLimit, "rate-limit", cfg.RateLimit, "per-client requests/second (0 disables)")
	flag.Float64Var(&cfg.RateBurst, "rate-burst", cfg.RateBurst, "per-client burst size")
	flag.IntVar(&cfg.DrainSeconds, "drain", cfg.DrainSeconds, "seconds to wait for active runs and requests on shutdown")
	flag.BoolVar(&cfg.Pprof, "pprof", cfg.Pprof, "serve net/http/pprof under /debug/pprof/")
	cfg.Pipeline.Register(flag.CommandLine)
	cfg.Engine.Register(flag.CommandLine)
	cfg.Profile.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := cfg.Profile.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, cfg, *loadPath, *savePath, nil)
}

// configPath extracts the -config value from raw arguments, before the
// flag package has seen them.
func configPath(args []string) string {
	for i, a := range args {
		for _, name := range []string{"-config", "--config"} {
			if a == name && i+1 < len(args) {
				return args[i+1]
			}
			if strings.HasPrefix(a, name+"=") {
				return strings.TrimPrefix(a, name+"=")
			}
		}
	}
	return ""
}

// serve boots the serving state, listens until ctx is canceled, then
// drains and (optionally) persists. When ready is non-nil the bound
// listen address is sent on it once the server accepts connections —
// tests listen on 127.0.0.1:0 and need the picked port.
func serve(ctx context.Context, cfg daemonConfig, loadPath, savePath string, ready chan<- string) error {
	var (
		p        *metascritic.Pipeline
		results  map[int]*metascritic.Result
		worldCfg metascritic.WorldConfig
	)
	if loadPath != "" {
		art, err := snapshot.Load(loadPath)
		if err != nil {
			return fmt.Errorf("load %s: %w", loadPath, err)
		}
		p, results, err = snapshot.Restore(art)
		if err != nil {
			return fmt.Errorf("restore %s: %w", loadPath, err)
		}
		worldCfg = art.World
		log.Printf("booted warm from %s: %d ASes, %d served metros", loadPath, p.World.G.N(), len(results))
	} else {
		worldCfg = cfg.Pipeline.Config()
		var w *metascritic.World
		var n int
		w, p, n = cfg.Pipeline.Build()
		log.Printf("booted cold: %d ASes, %d metros, %d public traceroutes seeded", w.G.N(), len(w.G.Metros), n)
	}

	base := metascritic.DefaultConfig()
	cfg.Engine.Apply(&base, cfg.Seed)
	cfg.Engine.ApplyPipeline(p)
	srv := api.NewServer(p, results, api.Options{
		WorldCfg:     worldCfg,
		Base:         base,
		MaxRunBudget: cfg.MaxRunBudget,
		RateLimit:    cfg.RateLimit,
		RateBurst:    cfg.RateBurst,
	})

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if cfg.Pprof {
		// net/http/pprof registers its handlers on the default mux at
		// import time; mount them next to the API so `go tool pprof
		// http://host/debug/pprof/profile` works against a live daemon.
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	log.Printf("serving on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: drain active runs first (their commits land in
	// the final state and clients can still poll status), then stop the
	// HTTP server, then persist.
	log.Printf("shutting down: draining runs (up to %ds)", cfg.DrainSeconds)
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(cfg.DrainSeconds)*time.Second)
	defer cancel()
	drainErr := srv.Runs().Shutdown(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil {
		hs.Close()
	}
	if !errors.Is(<-errc, http.ErrServerClosed) {
		log.Printf("listener exited abnormally")
	}

	if savePath != "" {
		st := srv.State()
		if err := snapshot.Save(savePath, snapshot.Capture(st.WorldCfg, st.Pipe, st.Results)); err != nil {
			return fmt.Errorf("save %s: %w", savePath, err)
		}
		log.Printf("serving state (seq %d, %d metros) saved to %s", st.Seq, len(st.Results), savePath)
	}
	return drainErr
}
