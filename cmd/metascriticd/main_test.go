package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"metascritic/internal/cliflags"
)

func testConfig() daemonConfig {
	cfg := defaults()
	cfg.Pipeline = cliflags.Pipeline{World: cliflags.World{Scale: 0.1, Seed: 7}, Public: 4}
	cfg.Engine.Budget = 300
	cfg.Engine.Workers = 2
	cfg.Addr = "127.0.0.1:0"
	cfg.DrainSeconds = 60
	return cfg
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

// TestServeGracefulShutdown is the ISSUE's no-goroutine-leak cancel
// test: boot the daemon, commit one run, cancel the serve context, and
// require (a) a clean exit, (b) goroutines back to the pre-serve count,
// and (c) a -save snapshot that boots a second daemon warm.
func TestServeGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a world and runs a metro")
	}
	snapPath := filepath.Join(t.TempDir(), "state.snap")
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- serve(ctx, testConfig(), "", snapPath, ready) }()
	addr := <-ready
	base := "http://" + addr

	if code := getJSON(t, base+"/healthz", nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}

	// The pprof endpoints are mounted next to the API (default on).
	resp0, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	io.Copy(io.Discard, resp0.Body)
	resp0.Body.Close()
	if resp0.StatusCode != 200 {
		t.Fatalf("pprof cmdline: %d", resp0.StatusCode)
	}

	// Submit a run and wait for its commit so the snapshot has a result.
	resp, err := http.Post(base+"/v1/runs", "application/json",
		strings.NewReader(`{"metros": ["Sydney"], "budget": 250}`))
	if err != nil {
		t.Fatal(err)
	}
	var accepted map[string]string
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &accepted)
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st map[string]any
		getJSON(t, base+"/v1/runs/"+accepted["id"], &st)
		if st["state"] == "done" {
			break
		}
		if st["state"] == "failed" || st["state"] == "canceled" {
			t.Fatalf("run ended %v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never finished: %v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code := getJSON(t, base+"/v1/consistency/Sydney", nil); code != 200 {
		t.Fatalf("Sydney not served after commit: %d", code)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("serve did not return after cancel")
	}

	// No goroutine leaks: the serve loop, the run manager, and the HTTP
	// server must all be gone (allow slack for test/runtime goroutines).
	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: %d before serve, %d after shutdown", before, n)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The -save snapshot boots a second daemon warm, still serving the
	// committed metro.
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	ready2 := make(chan string, 1)
	errc2 := make(chan error, 1)
	go func() { errc2 <- serve(ctx2, testConfig(), snapPath, "", ready2) }()
	addr2 := <-ready2
	var stats map[string]any
	if code := getJSON(t, "http://"+addr2+"/admin/stats", &stats); code != 200 {
		t.Fatalf("warm stats: %d", code)
	}
	served, _ := stats["served_metros"].([]any)
	if len(served) != 1 || served[0] != "Sydney" {
		t.Fatalf("warm boot lost the committed metro: %v", stats["served_metros"])
	}
	if code := getJSON(t, "http://"+addr2+"/v1/consistency/Sydney", nil); code != 200 {
		t.Fatalf("warm boot does not serve Sydney: %d", code)
	}
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatalf("warm serve returned %v", err)
	}
}

func TestConfigPath(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-config", "a.json"}, "a.json"},
		{[]string{"--config=b.json", "-addr", ":1"}, "b.json"},
		{[]string{"-addr", ":1"}, ""},
		{[]string{"-config"}, ""},
	} {
		if got := configPath(tc.args); got != tc.want {
			t.Errorf("configPath(%v) = %q, want %q", tc.args, got, tc.want)
		}
	}
}

func TestDaemonConfigJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "daemon.json")
	doc := `{
  "addr": "127.0.0.1:9999",
  "scale": 0.1,
  "seed": 3,
  "public": 2,
  "budget": 500,
  "workers": 1,
  "share_priors": false,
  "max_run_budget": 1000,
  "rate_limit": 5,
  "rate_burst": 10,
  "drain_seconds": 5,
  "pprof": false,
  "cpuprofile": "cpu.out"
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := defaults()
	if err := cliflags.LoadJSON(path, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != "127.0.0.1:9999" || cfg.Scale != 0.1 || cfg.Budget != 500 ||
		cfg.MaxRunBudget != 1000 || cfg.RateLimit != 5 || cfg.DrainSeconds != 5 ||
		cfg.Pprof || cfg.CPUProfile != "cpu.out" {
		t.Fatalf("config not applied: %+v", cfg)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"adr": ":1"}`), 0o644)
	if err := cliflags.LoadJSON(bad, &cfg); err == nil {
		t.Fatal("unknown key accepted")
	}
}
